// The mpiBLAST baseline driver (modeled on mpiBLAST 1.2.1).
//
// Reproduces the data-handling structure the paper measures and improves:
//
//   * the database is statically pre-partitioned into physical fragments
//     by mpiformatdb (done before the run; see seqdb/partition.h);
//   * a master assigns un-searched fragments to workers (greedily on
//     request by default; see MpiBlastOptions::scheduler); workers *copy*
//     their fragments from shared storage to node-local disks (or, on
//     clusters without local disks, to shared job scratch) before
//     searching;
//   * fragment I/O during the search is charged inside the search phase
//     (NCBI BLAST inputs the database through memory-mapped files, so
//     mpiBLAST's search time "embeds a certain amount of I/O");
//   * result merging is serialized at the master: workers submit their
//     full local result alignments, the master sorts globally, then — for
//     every alignment selected for output — makes a synchronous
//     per-alignment fetch round trip to the owning worker for the sequence
//     data, formats the text itself, and writes the single output file
//     serially (paper Figure 2, right).
//
// Implemented on the shared driver framework (src/driver): the master's
// assignment loop is driver::serve_work over a pluggable driver::Scheduler,
// the per-query search loop is driver::SearchStage, and the fetch protocol
// runs over typed driver::Channels.
#pragma once

#include <string>
#include <vector>

#include "blast/driver.h"
#include "blast/engine.h"
#include "blast/job.h"
#include "driver/scheduler.h"
#include "mpisim/exec.h"
#include "mpisim/fault.h"
#include "mpisim/hooks.h"
#include "mpisim/trace.h"
#include "pario/env.h"
#include "seqdb/partition.h"
#include "sim/cluster.h"

namespace pioblast::mpiblast {

/// Inputs the baseline needs beyond the job itself: the physical fragments
/// produced by mpiformatdb and the global index (for database statistics).
struct MpiBlastOptions {
  blast::JobConfig job;
  /// Optional event tracer (not owned; must outlive the run).
  mpisim::Tracer* tracer = nullptr;
  /// Protocol verifier (mpisim/verifier.h): audits the run for deadlock,
  /// collective order, tag registry conformance, typed payloads, and
  /// message leaks. On by default; `--verify off` in the CLI disables it.
  bool verify = true;
  /// Protospec runtime conformance (protospec/conform.h): replay the run's
  /// trace against the declarative mpiblast protocol spec and throw
  /// mpisim::VerifyError on the first divergent event. Uses `tracer` when
  /// set, otherwise records an internal trace. The CLI's --conformance.
  bool conformance = false;
  std::vector<std::string> fragment_bases;  ///< mpiformatdb outputs, in order
  std::vector<seqdb::SeqRange> fragment_ranges;
  seqdb::DbIndex global_index;
  /// MPI-IO-style access hints (pario/env.h). The baseline's volume reads
  /// are whole-file and contiguous, so only the list-I/O path is
  /// exercised (merging is a no-op on single whole-file requests); the
  /// hints exist so the CLI's --pario-hints flag tunes both drivers.
  pario::Hints hints{};
  /// Fragment-assignment policy. The historical default is the greedy
  /// first-come-first-served master loop; static policies pre-plan the
  /// same request/reply protocol deterministically.
  driver::SchedulerKind scheduler = driver::SchedulerKind::kGreedyDynamic;
  /// Fault injections (crashes, stragglers, drops); inert by default. An
  /// active plan switches the run into its fault-tolerant paths: the
  /// master tracks worker liveness and reassigns a lost worker's
  /// fragments. See mpisim/fault.h and the CLI's --fault flag.
  mpisim::FaultPlan faults;
  /// mpicheck hooks (mpisim/hooks.h; either may be null, neither owned):
  /// a deterministic cooperative scheduler and a happens-before race
  /// detector. Set by the CLI's --check/--schedule modes and by tests.
  mpisim::ScheduleHook* schedule = nullptr;
  mpisim::RaceHook* race = nullptr;
  /// Rank execution backend (mpisim/exec.h): threads (default) or the
  /// single-threaded fiber event loop. The CLI's --exec-model flag.
  mpisim::ExecModel exec = mpisim::ExecModel::kThreads;
  /// Search-kernel implementation (blast/engine.h). Both kernels produce
  /// bit-identical output and virtual time; the CLI's --kernel flag.
  blast::KernelKind kernel = blast::KernelKind::kFast;
};

/// Runs mpiBLAST with `nprocs` simulated processes (1 master + workers).
/// The output file is written to job.output_path on storage.shared().
blast::DriverResult run_mpiblast(const sim::ClusterConfig& cluster, int nprocs,
                                 pario::ClusterStorage& storage,
                                 const MpiBlastOptions& opts);

}  // namespace pioblast::mpiblast
