#include "mpiblast/mpiblast.h"

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "blast/engine.h"
#include "blast/format.h"
#include "blast/query_set.h"
#include "blast/serialize.h"
#include "driver/channel.h"
#include "driver/master_worker.h"
#include "driver/messages.h"
#include "driver/search_stage.h"
#include "driver/tags.h"
#include "driver/work_queue.h"
#include "mpisim/wire.h"
#include "pario/file.h"
#include "protospec/conform.h"
#include "protospec/spec.h"
#include "util/error.h"

namespace pioblast::mpiblast {

namespace {

constexpr driver::Channel<driver::FetchRequest> kFetchReq{driver::kTagFetchReq};
constexpr driver::Channel<driver::FetchResponse> kFetchResp{
    driver::kTagFetchResp};

class MpiBlastApp final : public driver::MasterWorkerApp {
 public:
  MpiBlastApp(const sim::ClusterConfig& cluster, int nprocs,
              pario::ClusterStorage& storage, const MpiBlastOptions& opts,
              std::shared_ptr<const blast::QuerySet> queries,
              const blast::GlobalDbStats& db_stats)
      : MasterWorkerApp(cluster, nprocs, storage, opts.job, std::move(queries),
                        opts.tracer),
        opts_(opts),
        db_stats_(db_stats),
        scheduler_(driver::make_scheduler(opts.scheduler)) {
    set_verify(opts.verify);
    set_faults(opts.faults);
    set_check(opts.schedule, opts.race);
    set_exec(opts.exec);
  }

 private:
  void master(mpisim::Process& p) override;
  void worker(mpisim::Process& p) override;

  const MpiBlastOptions& opts_;
  blast::GlobalDbStats db_stats_;
  std::unique_ptr<driver::Scheduler> scheduler_;
};

void MpiBlastApp::master(mpisim::Process& p) {
  const auto nfragments =
      static_cast<std::uint32_t>(opts_.fragment_bases.size());
  const auto& qset = queries();
  const auto& query_list = qset.queries();
  const auto& contexts = qset.contexts();
  const seqdb::SeqType type = opts_.job.params.type;

  // Fragment scheduler (paper §2.2): by default greedy — assign the next
  // un-searched fragment to whichever worker asks first.
  p.set_phase("search");
  driver::serve_work(p, *scheduler_, nfragments, topology(), {}, &metrics());

  // Serialized result merging and output (paper Figure 2, right).
  p.set_phase("output");
  std::uint64_t out_offset = 0;
  std::uint64_t merged = 0;
  std::uint64_t reported = 0;
  for (std::uint32_t q = 0; q < qset.size(); ++q) {
    auto gathered = p.gather({}, 0);
    // Decode every worker's full local result list for this query.
    struct Candidate {
      blast::Hsp hsp;
      int owner;
      std::uint32_t local_index;
    };
    std::vector<Candidate> candidates;
    std::uint64_t submitted_bytes = 0;
    for (int w = 1; w < nprocs(); ++w) {
      // A crashed worker's gather slot is empty (live workers always send
      // at least the u32 hit count).
      if (gathered[static_cast<std::size_t>(w)].empty()) continue;
      submitted_bytes += gathered[static_cast<std::size_t>(w)].size();
      mpisim::Decoder dec(gathered[static_cast<std::size_t>(w)]);
      const auto count = dec.get<std::uint32_t>();
      for (std::uint32_t i = 0; i < count; ++i) {
        Candidate c;
        c.hsp = blast::decode_hsp(dec);
        c.owner = w;
        c.local_index = i;
        candidates.push_back(std::move(c));
      }
    }
    merged += candidates.size();
    p.compute(p.cost().merge_seconds(candidates.size(), submitted_bytes));
    // Every submitted record is a full alignment that must be threaded
    // through the master's NCBI result structures before screening.
    p.compute(p.cost().hsp_result_seconds(candidates.size()));
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return blast::Hsp::better(a.hsp, b.hsp);
              });
    if (candidates.size() >
        static_cast<std::size_t>(opts_.job.params.hitlist_size)) {
      candidates.resize(static_cast<std::size_t>(opts_.job.params.hitlist_size));
    }
    reported += candidates.size();

    const bool tabular = opts_.job.output_format == blast::OutputFormat::kTabular;
    std::string buffer =
        tabular ? blast::format_tabular_query_header(
                      query_list[q], opts_.job.db_title, candidates.size())
                : blast::format_query_header(query_list[q], opts_.job.db_title,
                                             db_stats_, candidates.size());
    p.compute(p.cost().format_seconds(buffer.size()));
    if (candidates.empty() && !tabular) buffer += blast::format_no_hits();
    const auto query_residues = contexts[q].residues();

    // Per-alignment synchronous fetch of sequence data from the owner. An
    // owner lost mid-loop costs its remaining alignments (the sequence
    // data died with it) but not the job: the fetch fails fast with
    // PeerLostError and the survivors' alignments still go out.
    for (const Candidate& c : candidates) {
      try {
        kFetchReq.send(p, c.owner, driver::FetchRequest{c.local_index});
        const driver::FetchResponse resp = kFetchResp.recv(p, c.owner);
        p.compute(p.cost().fetch_handling_seconds(1));
        const std::string text =
            tabular ? blast::format_tabular_line(c.hsp, query_list[q].id,
                                                 resp.defline)
                    : blast::format_alignment(c.hsp, type, query_residues,
                                              resp.residues, resp.defline,
                                              resp.subject_len, qset.matrix());
        p.compute(p.cost().format_seconds(text.size()));
        buffer += text;
      } catch (const mpisim::PeerLostError&) {
        // Impossible without fault injection; the alignment is dropped.
      }
    }
    // Release the workers from this query's serving loop.
    for (int w = 1; w < nprocs(); ++w)
      kFetchReq.send(p, w, driver::FetchRequest{driver::kEndOfQuery});

    // Serial write of this query's report section.
    pario::timed_write(
        p, shared(), opts_.job.output_path, out_offset,
        std::span(reinterpret_cast<const std::uint8_t*>(buffer.data()),
                  buffer.size()),
        1);
    out_offset += buffer.size();
  }
  metrics().set(driver::kMetricCandidatesMerged, merged);
  metrics().set(driver::kMetricAlignmentsReported, reported);
  metrics().set(driver::kMetricOutputBytes, out_offset);
}

void MpiBlastApp::worker(mpisim::Process& p) {
  const seqdb::SeqType type = opts_.job.params.type;
  driver::SearchStage stage(queries(), &metrics(), opts_.kernel);
  pario::VirtualFS& local = storage().local_for(p.rank());

  p.set_phase("search");
  while (true) {
    const auto assignment = driver::request_work<std::uint32_t>(
        p, [](std::uint32_t task_id, mpisim::Decoder&) { return task_id; });
    if (!assignment) break;
    const std::string& frag_base =
        opts_.fragment_bases[static_cast<std::size_t>(*assignment)];
    const seqdb::VolumeNames names = seqdb::volume_names(frag_base, type);

    // Copy stage: fragment volumes from shared storage to local scratch.
    p.set_phase("copy");
    for (const std::string& file : {names.index, names.sequence, names.header}) {
      pario::timed_copy(p, shared(), file, local, file, nworkers());
    }

    // Search stage. NCBI BLAST maps the volumes into memory, so the
    // input I/O is embedded in the search phase. The reads go through the
    // pario list-I/O entry point so --pario-hints tunes both drivers; a
    // whole-file read is a single contiguous request, so merging/sieving
    // are no-ops and the charge matches the historical timed_read_all.
    p.set_phase("search");
    pario::ListIoStats io_stats;
    for (const std::string& file : {names.index, names.sequence, names.header}) {
      const pario::Region whole{0, local.size(file)};
      (void)pario::list_read(p, local, file, std::span(&whole, 1), opts_.hints,
                             storage().has_local_disks() ? 1 : nworkers(),
                             &io_stats);
    }
    metrics().add(driver::kMetricParioListRequests, io_stats.requests);
    metrics().add(driver::kMetricParioDeviceReads, io_stats.reads_issued);
    metrics().add(driver::kMetricParioBytesWanted, io_stats.bytes_wanted);
    metrics().add(driver::kMetricParioBytesRead, io_stats.bytes_read);
    const std::uint64_t first_seq =
        opts_.fragment_ranges[static_cast<std::size_t>(*assignment)].first;
    stage.add_fragment(seqdb::load_volumes(local, frag_base, type, first_seq));
    stage.search_latest(p);
  }

  // Result submission + fetch serving, one query at a time. Sorting keeps
  // local indices deterministic regardless of fragment arrival order.
  p.set_phase("output");
  stage.sort_hits();
  for (std::uint32_t q = 0; q < queries().size(); ++q) {
    const auto& hits = stage.hits(q);
    mpisim::Encoder enc;
    enc.put(static_cast<std::uint32_t>(hits.size()));
    for (const driver::CachedHit& hit : hits) blast::encode_hsp(enc, hit.hsp);
    p.gather(enc.bytes(), 0);

    // Serve the master's per-alignment sequence-data fetches.
    while (true) {
      const driver::FetchRequest req = kFetchReq.recv(p, 0);
      if (req.end_of_query()) break;
      PIOBLAST_CHECK(req.local_index < hits.size());
      const driver::CachedHit& hit = hits[req.local_index];
      const seqdb::LoadedFragment& frag = stage.fragment(hit.frag_slot);
      const auto subject = frag.sequence(hit.local_id);
      driver::FetchResponse resp;
      resp.defline = std::string(frag.defline(hit.local_id));
      resp.subject_len = subject.size();
      resp.residues.assign(subject.begin(), subject.end());
      p.compute(p.cost().memcpy_seconds(driver::wire_size(resp)));
      kFetchResp.send(p, 0, resp);
    }
  }
}

}  // namespace

blast::DriverResult run_mpiblast(const sim::ClusterConfig& cluster, int nprocs,
                                 pario::ClusterStorage& storage,
                                 const MpiBlastOptions& opts) {
  PIOBLAST_CHECK_MSG(nprocs >= 2, "mpiBLAST needs a master and >= 1 worker");
  PIOBLAST_CHECK_MSG(!opts.fragment_bases.empty(), "no fragments to search");
  PIOBLAST_CHECK(opts.fragment_ranges.size() == opts.fragment_bases.size());

  const blast::GlobalDbStats db_stats{opts.global_index.total_residues,
                                      opts.global_index.num_seqs};

  // Query parsing and context construction are identical on every rank, so
  // they are prepared once and shared read-only across the rank threads
  // (host-side optimization; virtual-time charges are unchanged).
  const auto query_text_raw = storage.shared().read_all(opts.job.query_path);
  auto shared_queries = blast::QuerySet::build(
      std::string(query_text_raw.begin(), query_text_raw.end()),
      opts.job.params, db_stats);
  const auto nqueries = static_cast<int>(shared_queries->size());

  // Conformance needs the event stream; record one ourselves when the
  // caller did not ask for a trace.
  mpisim::Tracer conform_tracer;
  MpiBlastOptions local = opts;
  if (local.conformance && local.tracer == nullptr)
    local.tracer = &conform_tracer;

  MpiBlastApp app(cluster, nprocs, storage, local, std::move(shared_queries),
                  db_stats);
  blast::DriverResult result = app.run();
  if (local.conformance) {
    protospec::SpecParams sp;
    sp.nranks = nprocs;
    sp.tasks = static_cast<int>(opts.fragment_bases.size());
    sp.queries = nqueries;
    sp.fetch_cap = -1;  // per-query fetch count is data-dependent
    sp.fault_tolerant = opts.faults.active();
    result.conformance = protospec::enforce_conformance(
        *protospec::spec_by_name("mpiblast"), sp, local.tracer->sorted());
  }
  return result;
}

}  // namespace pioblast::mpiblast
