#include "mpiblast/mpiblast.h"

#include <algorithm>
#include <atomic>

#include "blast/engine.h"
#include "blast/format.h"
#include "blast/query_set.h"
#include "blast/serialize.h"
#include "mpisim/runtime.h"
#include "mpisim/wire.h"
#include "pario/file.h"
#include "util/error.h"

namespace pioblast::mpiblast {

namespace {

// Driver message tags (below the runtime's internal band).
constexpr int kTagWorkReq = 1;
constexpr int kTagAssign = 2;
constexpr int kTagFetchReq = 3;
constexpr int kTagFetchResp = 4;

constexpr std::uint32_t kEndOfQuery = 0xFFFFFFFFu;
constexpr std::int32_t kNoMoreWork = -1;

/// One cached local result: the HSP plus where its subject lives.
struct LocalHit {
  blast::Hsp hsp;
  std::size_t frag_slot = 0;  ///< index into the worker's loaded fragments
  std::uint64_t local_id = 0; ///< sequence ordinal within that fragment
};

}  // namespace

blast::DriverResult run_mpiblast(const sim::ClusterConfig& cluster, int nprocs,
                                 pario::ClusterStorage& storage,
                                 const MpiBlastOptions& opts) {
  PIOBLAST_CHECK_MSG(nprocs >= 2, "mpiBLAST needs a master and >= 1 worker");
  const int nworkers = nprocs - 1;
  const int nfragments = static_cast<int>(opts.fragment_bases.size());
  PIOBLAST_CHECK_MSG(nfragments >= 1, "no fragments to search");
  PIOBLAST_CHECK(opts.fragment_ranges.size() == opts.fragment_bases.size());

  const blast::GlobalDbStats db_stats{opts.global_index.total_residues,
                                      opts.global_index.num_seqs};
  const seqdb::SeqType type = opts.job.params.type;

  std::atomic<std::uint64_t> candidates_merged{0};
  std::atomic<std::uint64_t> alignments_reported{0};
  std::atomic<std::uint64_t> output_bytes{0};

  // Query parsing and context construction are identical on every rank, so
  // they are prepared once and shared read-only across the rank threads
  // (host-side optimization; virtual-time charges are unchanged).
  const auto query_text_raw = storage.shared().read_all(opts.job.query_path);
  const auto shared_queries = blast::QuerySet::build(
      std::string(query_text_raw.begin(), query_text_raw.end()),
      opts.job.params, db_stats);

  auto rank_fn = [&](mpisim::Process& p) {
    const int rank = p.rank();
    pario::VirtualFS& shared = storage.shared();

    // ---- init: NCBI toolkit startup + query broadcast ("other") ----------
    p.set_phase("other");
    p.compute(p.cost().process_init_seconds());

    std::vector<std::uint8_t> query_bytes;
    if (p.is_root()) {
      query_bytes = pario::timed_read_all(p, shared, opts.job.query_path, 1);
    }
    p.bcast(query_bytes, 0);
    const auto& queries = shared_queries->queries();
    const auto& contexts = shared_queries->contexts();
    const std::uint32_t nqueries = shared_queries->size();
    const blast::ScoringMatrix& matrix = shared_queries->matrix();

    if (p.is_root()) {
      // ================= master =================
      // Greedy fragment scheduler (paper §2.2): assign the next un-searched
      // fragment to whichever worker asks first.
      p.set_phase("search");
      int next_fragment = 0;
      int retired_workers = 0;
      while (retired_workers < nworkers) {
        mpisim::Message req = p.recv(mpisim::kAnySource, kTagWorkReq);
        std::int32_t assignment = kNoMoreWork;
        if (next_fragment < nfragments) {
          assignment = next_fragment++;
        } else {
          ++retired_workers;
        }
        p.send_value(req.src, kTagAssign, assignment);
      }

      // Serialized result merging and output (paper Figure 2, right).
      p.set_phase("output");
      std::uint64_t out_offset = 0;
      std::uint64_t merged = 0;
      std::uint64_t reported = 0;
      for (std::uint32_t q = 0; q < nqueries; ++q) {
        auto gathered = p.gather({}, 0);
        // Decode every worker's full local result list for this query.
        struct Candidate {
          blast::Hsp hsp;
          int owner;
          std::uint32_t local_index;
        };
        std::vector<Candidate> candidates;
        std::uint64_t submitted_bytes = 0;
        for (int w = 1; w < nprocs; ++w) {
          submitted_bytes += gathered[static_cast<std::size_t>(w)].size();
          mpisim::Decoder dec(gathered[static_cast<std::size_t>(w)]);
          const auto count = dec.get<std::uint32_t>();
          for (std::uint32_t i = 0; i < count; ++i) {
            Candidate c;
            c.hsp = blast::decode_hsp(dec);
            c.owner = w;
            c.local_index = i;
            candidates.push_back(std::move(c));
          }
        }
        merged += candidates.size();
        p.compute(p.cost().merge_seconds(candidates.size(), submitted_bytes));
        // Every submitted record is a full alignment that must be threaded
        // through the master's NCBI result structures before screening.
        p.compute(p.cost().hsp_result_seconds(candidates.size()));
        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate& a, const Candidate& b) {
                    return blast::Hsp::better(a.hsp, b.hsp);
                  });
        if (candidates.size() >
            static_cast<std::size_t>(opts.job.params.hitlist_size)) {
          candidates.resize(static_cast<std::size_t>(opts.job.params.hitlist_size));
        }
        reported += candidates.size();

        const bool tabular =
            opts.job.output_format == blast::OutputFormat::kTabular;
        std::string buffer =
            tabular ? blast::format_tabular_query_header(
                          queries[q], opts.job.db_title, candidates.size())
                    : blast::format_query_header(queries[q], opts.job.db_title,
                                                 db_stats, candidates.size());
        p.compute(p.cost().format_seconds(buffer.size()));
        if (candidates.empty() && !tabular) buffer += blast::format_no_hits();
        const auto query_residues = contexts[q].residues();

        // Per-alignment synchronous fetch of sequence data from the owner.
        for (const Candidate& c : candidates) {
          mpisim::Encoder req;
          req.put(q).put(c.local_index);
          p.send(c.owner, kTagFetchReq, req.bytes());
          mpisim::Message resp = p.recv(c.owner, kTagFetchResp);
          p.compute(p.cost().fetch_handling_seconds(1));
          mpisim::Decoder dec(resp.payload);
          const std::string defline = dec.get_string();
          const auto subject_len = dec.get<std::uint64_t>();
          const auto residues = dec.get_bytes();
          const std::string text =
              tabular ? blast::format_tabular_line(c.hsp, queries[q].id, defline)
                      : blast::format_alignment(c.hsp, type, query_residues,
                                                residues, defline, subject_len,
                                                matrix);
          p.compute(p.cost().format_seconds(text.size()));
          buffer += text;
        }
        // Release the workers from this query's serving loop.
        mpisim::Encoder sentinel;
        sentinel.put(q).put(kEndOfQuery);
        for (int w = 1; w < nprocs; ++w) p.send(w, kTagFetchReq, sentinel.bytes());

        // Serial write of this query's report section.
        pario::timed_write(p, shared, opts.job.output_path, out_offset,
                           std::span(reinterpret_cast<const std::uint8_t*>(
                                         buffer.data()),
                                     buffer.size()),
                           1);
        out_offset += buffer.size();
      }
      candidates_merged.store(merged);
      alignments_reported.store(reported);
      output_bytes.store(out_offset);
      p.barrier();
      return;
    }

    // ================= worker =================
    std::vector<seqdb::LoadedFragment> fragments;
    std::vector<std::vector<LocalHit>> per_query(nqueries);
    pario::VirtualFS& local = storage.local_for(rank);

    p.set_phase("search");
    while (true) {
      p.send(0, kTagWorkReq, {});
      const auto assignment = p.recv_value<std::int32_t>(0, kTagAssign);
      if (assignment == kNoMoreWork) break;
      const std::string& frag_base =
          opts.fragment_bases[static_cast<std::size_t>(assignment)];
      const seqdb::VolumeNames names = seqdb::volume_names(frag_base, type);

      // Copy stage: fragment volumes from shared storage to local scratch.
      p.set_phase("copy");
      for (const std::string& file :
           {names.index, names.sequence, names.header}) {
        pario::timed_copy(p, shared, file, local, file, nworkers);
      }

      // Search stage. NCBI BLAST maps the volumes into memory, so the
      // input I/O is embedded in the search phase.
      p.set_phase("search");
      for (const std::string& file :
           {names.index, names.sequence, names.header}) {
        (void)pario::timed_read_all(p, local, file,
                                    storage.has_local_disks() ? 1 : nworkers);
      }
      const std::uint64_t first_seq =
          opts.fragment_ranges[static_cast<std::size_t>(assignment)].first;
      fragments.push_back(seqdb::load_volumes(local, frag_base, type, first_seq));
      const seqdb::LoadedFragment& frag = fragments.back();
      const std::size_t slot = fragments.size() - 1;

      p.compute(p.cost().fragment_setup_seconds());
      for (std::uint32_t q = 0; q < nqueries; ++q) {
        auto result = blast::search_fragment(contexts[q], frag);
        p.compute(p.cost().search_seconds(result.counters));
        for (blast::Hsp& hsp : result.hsps) {
          LocalHit hit;
          hit.local_id = hsp.subject_global_id - frag.first_global_seq();
          hit.frag_slot = slot;
          hit.hsp = std::move(hsp);
          per_query[q].push_back(std::move(hit));
        }
      }
    }

    // Result submission + fetch serving, one query at a time.
    p.set_phase("output");
    for (std::uint32_t q = 0; q < nqueries; ++q) {
      // Keep a deterministic local order so local_index is stable.
      std::sort(per_query[q].begin(), per_query[q].end(),
                [](const LocalHit& a, const LocalHit& b) {
                  return blast::Hsp::better(a.hsp, b.hsp);
                });
      mpisim::Encoder enc;
      enc.put(static_cast<std::uint32_t>(per_query[q].size()));
      for (const LocalHit& hit : per_query[q]) blast::encode_hsp(enc, hit.hsp);
      p.gather(enc.bytes(), 0);

      // Serve the master's per-alignment sequence-data fetches.
      while (true) {
        mpisim::Message req = p.recv(0, kTagFetchReq);
        mpisim::Decoder dec(req.payload);
        (void)dec.get<std::uint32_t>();  // query id (redundant; kept on wire)
        const auto index = dec.get<std::uint32_t>();
        if (index == kEndOfQuery) break;
        PIOBLAST_CHECK(index < per_query[q].size());
        const LocalHit& hit = per_query[q][index];
        const seqdb::LoadedFragment& frag = fragments[hit.frag_slot];
        const auto subject = frag.sequence(hit.local_id);
        mpisim::Encoder resp;
        resp.put_string(std::string(frag.defline(hit.local_id)));
        resp.put<std::uint64_t>(subject.size());
        resp.put_bytes(subject);
        p.compute(p.cost().memcpy_seconds(resp.size()));
        p.send(0, kTagFetchResp, resp.bytes());
      }
    }
    p.barrier();
  };

  blast::DriverResult result;
  result.report = mpisim::run(nprocs, cluster, rank_fn, opts.tracer);
  result.phases = blast::summarize_run(result.report);
  result.output_bytes = output_bytes.load();
  result.candidates_merged = candidates_merged.load();
  result.alignments_reported = alignments_reported.load();
  return result;
}

}  // namespace pioblast::mpiblast
