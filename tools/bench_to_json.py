#!/usr/bin/env python3
"""Fold bench `ROW {...}` lines into a JSON results file.

The scalability bench (bench/fig3a_scalability) emits one machine-readable
line per (driver, world size):

    ROW {"bench":"fig3a","driver":"pioblast","procs":64,...}

This script collects those lines — from files given on the command line or
from stdin — and writes them as one JSON document, so figure data survives
as an artifact instead of scrollback:

    bench/fig3a_scalability --ranks 64,512,4096 --exec-model events \
        | tools/bench_to_json.py -o BENCH_scalability.json

Lines that are not ROW lines are ignored, so piping the bench's full
stdout (banner, tables) through is fine.

With --append, rows already present in the output file are kept and the
new rows are added after them — the trajectory-file mode used by
BENCH_pario.json, where each PR appends its measurement:

    bench/fig4_nfs_cluster --drivers none \
        | tools/bench_to_json.py --append -o BENCH_pario.json
"""

import argparse
import json
import sys


def collect_rows(stream):
    rows = []
    for line in stream:
        line = line.strip()
        if not line.startswith("ROW "):
            continue
        try:
            rows.append(json.loads(line[len("ROW "):]))
        except json.JSONDecodeError as e:
            print(f"bench_to_json: skipping malformed ROW line: {e}",
                  file=sys.stderr)
    return rows


def main():
    ap = argparse.ArgumentParser(
        description="collect bench ROW lines into a JSON results file")
    ap.add_argument("inputs", nargs="*",
                    help="bench output files (default: stdin)")
    ap.add_argument("-o", "--output", default="BENCH_scalability.json",
                    help="output path (default: %(default)s)")
    ap.add_argument("--append", action="store_true",
                    help="keep rows already present in the output file and "
                         "add the new ones after them")
    args = ap.parse_args()

    rows = []
    if args.inputs:
        for path in args.inputs:
            with open(path, encoding="utf-8") as f:
                rows.extend(collect_rows(f))
    else:
        rows.extend(collect_rows(sys.stdin))

    if not rows:
        print("bench_to_json: no ROW lines found", file=sys.stderr)
        return 1

    if args.append:
        try:
            with open(args.output, encoding="utf-8") as f:
                prior = json.load(f).get("rows", [])
        except FileNotFoundError:
            prior = []
        rows = prior + rows

    doc = {"rows": rows}
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"{args.output}: {len(rows)} rows")
    return 0


if __name__ == "__main__":
    sys.exit(main())
