// pioblast_cli — command-line front end for the simulated parallel BLAST.
//
// Runs either driver (or both, with output comparison) on a configurable
// simulated cluster, against a synthetic database or a user-supplied FASTA
// file, and writes the NCBI-style report plus a phase summary. With
// --trace, prints the head of the run's event timeline.
//
// Examples:
//   pioblast_cli --driver=pioblast --procs 16 --db-residues 1048576
//   pioblast_cli --driver=both --cluster=blade --query-bytes 8192
//   pioblast_cli --db-fasta my.fa --queries-fasta q.fa --output report.txt
//   pioblast_cli --procs 4 --check schedules=50,preempt=2   # explore
//   pioblast_cli --procs 4 --schedule 0,2,1,1               # replay
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "blast/job.h"
#include "driver/metrics.h"
#include "driver/scheduler.h"
#include "mpiblast/mpiblast.h"
#include "mpicheck/explore.h"
#include "mpisim/trace.h"
#include "pioblast/pioblast.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"
#include "util/args.h"
#include "util/table.h"
#include "util/units.h"

using namespace pioblast;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::RuntimeError("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void print_metrics(const char* name, const blast::DriverResult& r) {
  // One machine-readable line per driver: METRICS <driver> {json}.
  std::printf("METRICS %s %s\n", name, driver::metrics_json(r.metrics).c_str());
}

/// Parses the --check spec ("schedules=50,seed=1,preempt=2,dpor=on,
/// races=on,shrink=on,max=2000"; every field optional).
mpicheck::CheckOptions parse_check(const std::string& spec) {
  mpicheck::CheckOptions opts;
  std::istringstream in(spec);
  std::string field;
  while (std::getline(in, field, ',')) {
    if (field.empty()) continue;
    const auto eq = field.find('=');
    if (eq == std::string::npos)
      throw util::RuntimeError("--check: bad field '" + field +
                               "' (want key=value)");
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    if (key == "schedules") opts.random_schedules = std::stoi(val);
    else if (key == "seed") opts.seed = std::stoull(val);
    else if (key == "preempt") opts.preemption_bound = std::stoi(val);
    else if (key == "dpor") opts.dpor = val != "off";
    else if (key == "races") opts.detect_races = val != "off";
    else if (key == "shrink") opts.shrink = val != "off";
    else if (key == "max") opts.max_schedules = std::stoi(val);
    else
      throw util::RuntimeError("--check: unknown key '" + key + "'");
  }
  return opts;
}

/// Explores (or replays) `drive` under mpicheck and prints the CHECK
/// metrics line. Returns false when a failing schedule was found.
bool run_checked(
    const char* name, const mpicheck::CheckOptions& check,
    const std::function<void(mpisim::ScheduleHook*, mpisim::RaceHook*)>&
        drive) {
  mpicheck::Checker checker(drive, check);
  const mpicheck::CheckResult res = checker.run();
  std::printf("%s driver=%s\n", mpicheck::summary(res).c_str(), name);
  if (res.failed) {
    std::printf("%s\nreplay with: --schedule %s\n", res.error.c_str(),
                res.failing_trace.c_str());
  }
  return !res.failed;
}

void report(const char* name, const blast::DriverResult& r) {
  util::Table table({"Program", "Copy/Input", "Search", "Output", "Other",
                     "Total", "Search %"});
  table.add_row({name, util::fixed(r.phases.copy_input, 3),
                 util::fixed(r.phases.search, 2), util::fixed(r.phases.output, 3),
                 util::fixed(r.phases.other, 3), util::fixed(r.phases.total, 2),
                 util::format_percent(r.phases.search_fraction())});
  table.print(std::cout);
  std::printf("alignments: %llu, output: %s, candidates screened: %llu\n\n",
              static_cast<unsigned long long>(r.alignments_reported),
              util::format_bytes(r.output_bytes).c_str(),
              static_cast<unsigned long long>(r.candidates_merged));
  if (!r.conformance.empty()) std::printf("%s\n\n", r.conformance.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("pioblast_cli",
                       "simulated parallel BLAST (pioBLAST vs mpiBLAST)");
  args.add("driver", "pioblast", "pioblast | mpiblast | both")
      .add("cluster", "altix", "altix (XFS parallel FS) | blade (NFS + local disks)")
      .add("procs", "16", "number of simulated processes (1 master + workers)")
      .add("type", "protein", "protein | dna")
      .add("db-residues", "1048576", "synthetic database size in residues")
      .add("db-fasta", "", "use this FASTA file as the database instead")
      .add("queries-fasta", "", "use this FASTA file as the query set")
      .add("query-bytes", "8192", "synthetic query-set size in FASTA bytes")
      .add("fragments", "0", "virtual fragments (0 = one per worker)")
      .add("hitlist", "25", "max alignments reported per query")
      .add("evalue", "10", "E-value cutoff")
      .add("output", "", "write the report to this host file")
      .add("seed", "42", "RNG seed for synthetic data")
      .add("scheduler", "",
           "task scheduler: greedy | roundrobin | speed-weighted "
           "(default: greedy for mpiblast, roundrobin for pioblast)")
      .add("verify", "on",
           "protocol verifier (deadlock, collective order, tag audit, typed "
           "payloads, message leaks): on | off")
      .add("fault", "",
           "fault injections, ';'-separated: \"rank=K,crash_at=N\" | "
           "\"rank=K,slow=X\" | \"rank=K,drop_send=N\"; plan-wide: "
           "\"detect=<seconds>\", \"arm\"")
      .add("check", "",
           "explore schedules with mpicheck: \"schedules=N,seed=S,preempt=P,"
           "dpor=on|off,races=on|off,shrink=on|off,max=M\" (empty value "
           "fields use defaults; pass \"default\" for all defaults)")
      .add("schedule", "",
           "replay one forced schedule (a comma-separated rank trace as "
           "printed by a failing --check run)")
      .add("kernel", "fast",
           "search kernel: fast (batched fragment index + SWAR extension) | "
           "scalar (reference); outputs are bit-identical")
      .add("exec-model", "threads",
           "rank execution backend: threads (one OS thread per rank) | "
           "events (stackful fibers on one thread; required in practice "
           "for worlds beyond a few hundred ranks)")
      .add("pario-hints", "",
           "MPI-IO-style access hints, comma-separated key=value: "
           "cb_nodes=N, cb_buffer_size=SIZE (0 = unbounded), ds_read="
           "auto|enable|disable, ds_buffer_size=SIZE, ds_density=FRACTION, "
           "list=on|off; sizes accept k/m/g suffixes "
           "(e.g. \"cb_nodes=8,cb_buffer_size=1m,ds_read=enable\")")
      .add_flag("early-score-broadcast", "enable the §5 pruning extension")
      .add_flag("dynamic-scheduling", "greedy range scheduling (§5)")
      .add_flag("metrics", "print one machine-readable METRICS line per run")
      .add_flag("trace", "print the head of the event timeline")
      .add_flag("conformance",
                "replay the run's trace against the protospec protocol "
                "machines (src/protospec) and fail on the first divergent "
                "event; prints one CONFORM summary line per run");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error();
    return args.error().rfind("usage:", 0) == 0 ? 0 : 2;
  }

  const seqdb::SeqType type = args.get("type") == "dna"
                                  ? seqdb::SeqType::kNucleotide
                                  : seqdb::SeqType::kProtein;
  const int nprocs = static_cast<int>(args.get_int("procs"));
  const auto cluster = args.get("cluster") == "blade"
                           ? sim::ClusterConfig::ncsu_blade()
                           : sim::ClusterConfig::ornl_altix();

  // --- data ----------------------------------------------------------------
  std::vector<seqdb::FastaRecord> db;
  if (!args.get("db-fasta").empty()) {
    db = seqdb::parse_fasta(read_file(args.get("db-fasta")));
  } else {
    seqdb::GeneratorConfig gen;
    gen.type = type;
    gen.target_residues = static_cast<std::uint64_t>(args.get_int("db-residues"));
    gen.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    gen.family_fraction = 0.6;
    db = seqdb::generate_database(gen);
  }
  std::string query_fasta;
  if (!args.get("queries-fasta").empty()) {
    query_fasta = read_file(args.get("queries-fasta"));
  } else {
    query_fasta = seqdb::write_fasta(seqdb::sample_queries(
        db, static_cast<std::uint64_t>(args.get_int("query-bytes")),
        static_cast<std::uint64_t>(args.get_int("seed")) + 1));
  }
  std::printf("database: %zu sequences; query set: %zu bytes; cluster: %s; "
              "%d processes\n\n",
              db.size(), query_fasta.size(), cluster.name.c_str(), nprocs);

  // --- job -------------------------------------------------------------------
  pario::ClusterStorage storage(cluster, nprocs);
  storage.shared().write_all(
      "queries.fa",
      std::span(reinterpret_cast<const std::uint8_t*>(query_fasta.data()),
                query_fasta.size()));
  blast::JobConfig job;
  job.db_base = "db";
  job.db_title = "cli database";
  job.query_path = "queries.fa";
  job.params = type == seqdb::SeqType::kProtein
                   ? blast::SearchParams::blastp_defaults()
                   : blast::SearchParams::blastn_defaults();
  job.params.hitlist_size = static_cast<int>(args.get_int("hitlist"));
  job.params.evalue_cutoff = args.get_double("evalue");
  job.nfragments = static_cast<int>(args.get_int("fragments"));

  const std::string driver = args.get("driver");
  const bool verify = args.get("verify") != "off";
  const mpisim::ExecModel exec = mpisim::parse_exec_model(args.get("exec-model"));
  const blast::KernelKind kernel = blast::parse_kernel(args.get("kernel"));
  mpisim::FaultPlan faults;
  if (!args.get("fault").empty()) {
    faults = mpisim::FaultPlan::parse(args.get("fault"));
    faults.validate(nprocs);
    std::printf("fault plan: %s\n\n", faults.describe().c_str());
  }
  pario::Hints hints;
  if (!args.get("pario-hints").empty()) {
    try {
      hints = pario::Hints::parse(args.get("pario-hints"));
    } catch (const util::RuntimeError& e) {
      std::cerr << e.what() << '\n';
      return 2;
    }
    std::printf("pario hints: %s\n\n", hints.describe().c_str());
  }
  mpisim::Tracer tracer;
  mpisim::Tracer* trace_ptr = args.get_flag("trace") ? &tracer : nullptr;

  // --check explores many schedules; --schedule replays exactly one.
  const bool checking =
      !args.get("check").empty() || !args.get("schedule").empty();
  mpicheck::CheckOptions check_opts;
  if (!args.get("check").empty() && args.get("check") != "default")
    check_opts = parse_check(args.get("check"));
  if (!args.get("schedule").empty())
    check_opts.replay_trace = args.get("schedule");

  std::vector<std::uint8_t> mpi_out, pio_out;
  if (driver == "mpiblast" || driver == "both") {
    const int nfragments = job.nfragments > 0 ? job.nfragments : nprocs - 1;
    const auto parts = seqdb::mpiformatdb(storage.shared(), db, job.db_base,
                                          job.params.type, job.db_title,
                                          nfragments);
    mpiblast::MpiBlastOptions opts;
    opts.job = job;
    opts.tracer = trace_ptr;
    opts.verify = verify;
    opts.conformance = args.get_flag("conformance");
    opts.job.output_path = "out.mpiblast.txt";
    opts.fragment_bases = parts.fragment_bases;
    opts.fragment_ranges = parts.ranges;
    opts.global_index = parts.global_index;
    opts.hints = hints;
    opts.faults = faults;
    opts.exec = exec;
    opts.kernel = kernel;
    if (!args.get("scheduler").empty())
      opts.scheduler = driver::parse_scheduler(args.get("scheduler"));
    blast::DriverResult result;
    if (checking) {
      const bool ok = run_checked(
          "mpiblast", check_opts,
          [&](mpisim::ScheduleHook* s, mpisim::RaceHook* r) {
            mpiblast::MpiBlastOptions o = opts;
            o.schedule = s;
            o.race = r;
            result = mpiblast::run_mpiblast(cluster, nprocs, storage, o);
          });
      if (!ok) return 1;
    } else {
      result = mpiblast::run_mpiblast(cluster, nprocs, storage, opts);
    }
    report("mpiBLAST", result);
    if (args.get_flag("metrics")) print_metrics("mpiblast", result);
    mpi_out = storage.shared().read_all("out.mpiblast.txt");
  }
  if (driver == "pioblast" || driver == "both") {
    seqdb::format_db(storage.shared(), db, job.db_base, job.params.type,
                     job.db_title);
    pio::PioBlastOptions opts;
    opts.job = job;
    opts.tracer = trace_ptr;
    opts.verify = verify;
    opts.conformance = args.get_flag("conformance");
    opts.job.output_path = "out.pioblast.txt";
    opts.early_score_broadcast = args.get_flag("early-score-broadcast");
    opts.dynamic_scheduling = args.get_flag("dynamic-scheduling");
    opts.hints = hints;
    opts.faults = faults;
    opts.exec = exec;
    opts.kernel = kernel;
    if (!args.get("scheduler").empty())
      opts.scheduler = driver::parse_scheduler(args.get("scheduler"));
    blast::DriverResult result;
    if (checking) {
      const bool ok = run_checked(
          "pioblast", check_opts,
          [&](mpisim::ScheduleHook* s, mpisim::RaceHook* r) {
            pio::PioBlastOptions o = opts;
            o.schedule = s;
            o.race = r;
            result = pio::run_pioblast(cluster, nprocs, storage, o);
          });
      if (!ok) return 1;
    } else {
      result = pio::run_pioblast(cluster, nprocs, storage, opts);
    }
    report("pioBLAST", result);
    if (args.get_flag("metrics")) print_metrics("pioblast", result);
    pio_out = storage.shared().read_all("out.pioblast.txt");
  }

  if (driver == "both") {
    std::printf("outputs identical: %s\n", mpi_out == pio_out ? "yes" : "NO");
    if (mpi_out != pio_out) return 1;
  }

  if (trace_ptr != nullptr) {
    std::printf("--- event timeline (first 60 events of %zu) ---\n",
                tracer.size());
    tracer.render(std::cout, 60);
  }

  if (!args.get("output").empty()) {
    const auto& out = pio_out.empty() ? mpi_out : pio_out;
    std::ofstream f(args.get("output"), std::ios::binary);
    f.write(reinterpret_cast<const char*>(out.data()),
            static_cast<std::streamsize>(out.size()));
    std::printf("report written to %s (%s)\n", args.get("output").c_str(),
                util::format_bytes(out.size()).c_str());
  }
  return 0;
}
