// Exhaustive protocol model checking, as run by CI.
//
// Sweeps every protocol spec across world sizes and crash budgets and
// model-checks each instance. One human line and one machine-readable
// `ROW {...}` line per instance (fold the ROWs into BENCH_protospec.json
// with tools/bench_to_json.py). Exit status is nonzero on the first
// violation.
//
//   ./tools/protospec_check --max-ranks 6
//   ./tools/protospec_check --spec pioblast --crashes 1 --no-por

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "protospec/check.h"
#include "protospec/spec.h"

namespace {

using pioblast::protospec::ModelCheckOptions;
using pioblast::protospec::ModelCheckResult;
using pioblast::protospec::ProtocolSpec;
using pioblast::protospec::SpecParams;

struct Instance {
  const ProtocolSpec* spec = nullptr;
  std::string variant;  ///< extra label ("static", "dynamic", "")
  SpecParams params;
  int crashes = 0;
};

int run_instance(const Instance& inst, const ModelCheckOptions& base,
                 bool& failed) {
  ModelCheckOptions opts = base;
  opts.max_crashes = inst.crashes;
  const auto t0 = std::chrono::steady_clock::now();
  const ModelCheckResult res =
      pioblast::protospec::model_check(*inst.spec, inst.params, opts);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  const std::string label =
      std::string(inst.spec->name) +
      (inst.variant.empty() ? "" : "/" + inst.variant);
  std::printf("%-24s ranks=%d crashes=%d ft=%d  states=%llu pruned=%llu "
              "trans=%llu maxq=%zu depth=%zu  %s (%lld ms)\n",
              label.c_str(), inst.params.nranks, inst.crashes,
              inst.params.fault_tolerant ? 1 : 0,
              static_cast<unsigned long long>(res.stats.states_explored),
              static_cast<unsigned long long>(res.stats.states_pruned),
              static_cast<unsigned long long>(res.stats.transitions),
              res.stats.max_queue_depth, res.stats.max_depth,
              res.ok ? "ok" : "VIOLATION", static_cast<long long>(ms));
  std::printf("ROW {\"bench\":\"protospec\",\"spec\":\"%s\",\"variant\":\"%s\","
              "\"ranks\":%d,\"crashes\":%d,\"fault_tolerant\":%s,"
              "\"states_explored\":%llu,\"states_pruned\":%llu,"
              "\"transitions\":%llu,\"terminal_states\":%llu,"
              "\"crash_branches\":%llu,\"max_queue_depth\":%zu,"
              "\"max_depth\":%zu,\"por\":%s,\"ms\":%lld,\"result\":\"%s\"}\n",
              inst.spec->name, inst.variant.c_str(), inst.params.nranks,
              inst.crashes, inst.params.fault_tolerant ? "true" : "false",
              static_cast<unsigned long long>(res.stats.states_explored),
              static_cast<unsigned long long>(res.stats.states_pruned),
              static_cast<unsigned long long>(res.stats.transitions),
              static_cast<unsigned long long>(res.stats.terminal_states),
              static_cast<unsigned long long>(res.stats.crash_branches),
              res.stats.max_queue_depth, res.stats.max_depth,
              opts.por ? "true" : "false", static_cast<long long>(ms),
              res.ok ? "ok" : "violation");
  if (!res.ok) {
    std::printf("  first violation: %s\n", res.error.c_str());
    failed = true;
  }
  return res.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int min_ranks = 2;
  int max_ranks = 6;
  int crashes_arg = -1;   // -1 = both 0 and 1
  int tasks_arg = -1;     // -1 = scaled default
  int queries_arg = -1;   // -1 = scaled default
  std::string spec_filter;
  ModelCheckOptions base;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--min-ranks") {
      min_ranks = std::atoi(next());
    } else if (arg == "--max-ranks") {
      max_ranks = std::atoi(next());
    } else if (arg == "--crashes") {
      crashes_arg = std::atoi(next());
    } else if (arg == "--tasks") {
      tasks_arg = std::atoi(next());
    } else if (arg == "--queries") {
      queries_arg = std::atoi(next());
    } else if (arg == "--spec") {
      spec_filter = next();
    } else if (arg == "--no-por") {
      base.por = false;
    } else if (arg == "--max-states") {
      base.max_states = static_cast<std::uint64_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr,
                   "usage: protospec_check [--min-ranks N] [--max-ranks N] "
                   "[--crashes 0|1] [--tasks N] [--queries N] [--spec NAME] "
                   "[--no-por] [--max-states N]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  std::vector<Instance> instances;
  auto add = [&](const ProtocolSpec* spec, const std::string& variant,
                 SpecParams params) {
    if (!spec_filter.empty() &&
        std::string(spec->name).find(spec_filter) == std::string::npos &&
        variant.find(spec_filter) == std::string::npos)
      return;
    std::vector<int> budgets;
    if (crashes_arg < 0) {
      budgets = {0, 1};
    } else {
      budgets = {crashes_arg};
    }
    for (const int crashes : budgets) {
      Instance inst;
      inst.spec = spec;
      inst.variant = variant;
      inst.params = params;
      inst.crashes = crashes;
      // A crash budget needs a fault-tolerant world; also check the
      // fault-tolerant protocol without crashes (parking paths, notices).
      if (crashes > 0) inst.params.fault_tolerant = true;
      instances.push_back(inst);
      if (crashes == 0 && !params.fault_tolerant) {
        Instance ft = inst;
        ft.params.fault_tolerant = true;
        instances.push_back(ft);
      }
    }
  };

  for (int n = min_ranks; n <= max_ranks; ++n) {
    // Small worlds afford a task per worker; past 4 ranks the any-worker
    // assignment orderings dominate the state count (the master's
    // per-worker history makes different assignment orders distinct,
    // non-converging states), and 3 tasks already exercise every protocol
    // path (assign, retire, park, requeue). At 6 ranks the serve-work
    // specs shrink further — measured against the 4M-state CI bound:
    // mpiblast fits at 2 tasks (3.8M states), the dynamic pioBLAST
    // exchange at 1 (1.7M); the static variant is cheap at any count.
    const int tasks = tasks_arg >= 0 ? tasks_arg : (n <= 4 ? n : 3);
    const int tight = tasks_arg >= 0 ? tasks_arg : (n <= 5 ? tasks : 2);
    const int tighter = tasks_arg >= 0 ? tasks_arg : (n <= 5 ? tasks : 1);
    // Two queries cover the query-loop back-edge (gather/barrier then a
    // second fetch round); at 6 ranks the second round roughly doubles
    // the crash placements on top of the widest any-worker fan-out, so
    // the largest world keeps one query to stay inside the state bound.
    const int queries = queries_arg >= 0 ? queries_arg : (n <= 5 ? 2 : 1);
    {
      SpecParams p;
      p.nranks = n;
      p.tasks = tight;
      p.queries = queries;
      p.fetch_cap = 1;
      add(pioblast::protospec::spec_by_name("mpiblast"), "", p);
    }
    {
      SpecParams p;
      p.nranks = n;
      p.tasks = tasks;
      p.queries = queries;
      p.batch = 1;
      p.dynamic = false;
      add(pioblast::protospec::spec_by_name("pioblast"), "static", p);
      p.tasks = tighter;
      p.dynamic = true;
      p.early_score = true;
      add(pioblast::protospec::spec_by_name("pioblast"), "dynamic", p);
    }
    {
      SpecParams p;
      p.nranks = n;
      p.naggs = n >= 2 ? 2 : 1;
      p.rounds = 2;
      add(pioblast::protospec::spec_by_name("pario_write"), "", p);
      add(pioblast::protospec::spec_by_name("pario_read"), "", p);
    }
  }

  bool failed = false;
  for (const Instance& inst : instances) run_instance(inst, base, failed);
  std::printf("protospec_check: %zu instance(s), %s\n", instances.size(),
              failed ? "FAILED" : "all ok");
  return failed ? 1 : 0;
}
