#!/usr/bin/env python3
"""Lint: no raw integer message tags in src/, and a consistent registry.

Every point-to-point tag in the driver band must come from the central
registry (src/driver/tags.h) and every infrastructure tag from a named
internal-band constant (mpisim collectives, pario two-phase exchange, the
failure detector). A bare integer literal in the tag slot of a send or
receive call bypasses both the registry's static asserts and the protocol
verifier's tag audit, so CI rejects it here.

Checked call forms (tag slot = second argument):

    p.send(dst, TAG, ...)        p.recv(src, TAG)
    p.send_value(dst, TAG, v)    p.recv_value<T>(src, TAG)
    mb.try_pop(src, TAG)         mb.has_match(src, TAG)

Typed channels (driver/channel.h) take a Process as their first argument
and carry their tag internally — `ch.recv(p, 0)` passes a rank, not a
tag — so calls whose first argument is `p` are skipped. Suppress a
deliberate literal with a `lint-tags: allow` comment on the same line.

When the scanned directory contains the registry (driver/tags.h), three
views of it are cross-checked so they cannot drift:

    * the `enum Tag` enumerators,
    * the `detail::kAllTags` seed list for the verifier's tag audit,
    * the `tag_name()` diagnostic switch,

and — when protospec's edge tables (protospec/spec.cpp) are present too —
every registered tag must be carried by some protocol-spec edge and every
tag a spec edge names must be registered. (The same audit runs at run time
in protospec::audit_tag_coverage; this copy fails `ctest -L lint` without
building anything.)

Usage: lint_tags.py <src-dir> [...more dirs]
Exit status: 0 clean, 1 findings, 2 usage error.
"""

import re
import sys
from pathlib import Path

METHODS = ("send", "recv", "send_value", "recv_value", "try_pop", "has_match")

# Files whose whole purpose is defining the tag bands.
ALLOWED_FILES = frozenset({"driver/tags.h"})

SUPPRESS = "lint-tags: allow"

CALL_RE = re.compile(
    r"\.\s*(?P<method>" + "|".join(METHODS) + r")\s*(?:<[^;{}()<>]*>)?\s*\("
)
INT_LITERAL_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")


def split_top_level_args(text, start):
    """Returns ([arg, ...], end) for the balanced call starting at
    text[start] == '(' — or (None, start) if unbalanced/truncated."""
    assert text[start] == "("
    depth = 0
    args = []
    current = []
    for i in range(start, len(text)):
        c = text[i]
        if c in "([{<" and (c != "<" or depth > 0):
            # '<' only nests inside the arg list (comparisons are rare in
            # tag slots; template args in later slots are what matters).
            depth += 1
            current.append(c)
        elif c in ")]}>" and (c != ">" or depth > 1):
            depth -= 1
            if depth == 0:
                args.append("".join(current[1:]).strip())
                return args, i
            current.append(c)
        elif c == "," and depth == 1:
            args.append("".join(current[1:]).strip())
            current = ["("]
        else:
            current.append(c)
    return None, start


def strip_comments(text):
    """Blanks out comments and string literals, preserving offsets."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lint_file(path, rel, findings):
    raw = path.read_text(encoding="utf-8", errors="replace")
    text = strip_comments(raw)
    raw_lines = raw.splitlines()
    for m in CALL_RE.finditer(text):
        open_paren = m.end() - 1
        args, _ = split_top_level_args(text, open_paren)
        if args is None or len(args) < 2:
            continue
        if args[0] == "p":  # typed channel: ch.recv(p, rank)
            continue
        tag = args[1]
        if not INT_LITERAL_RE.match(tag):
            continue
        line_no = text.count("\n", 0, m.start()) + 1
        line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
        if SUPPRESS in line:
            continue
        findings.append(
            f"{rel}:{line_no}: raw integer tag {tag} in .{m.group('method')}() "
            f"call; use a named constant from driver/tags.h or an "
            f"internal-band constant"
        )


TAGS_HEADER = "driver/tags.h"
SPEC_TABLE = "protospec/spec.cpp"

ENUM_RE = re.compile(r"^\s*(kTag\w+)\s*=\s*\d+\s*,?\s*(?:///<.*)?$", re.M)
ALLTAGS_RE = re.compile(
    r"kAllTags\[\]\s*=\s*\{(?P<body>[^}]*)\}", re.S
)
CASE_RE = re.compile(r"case\s+(kTag\w+)\s*:")
SPEC_TAG_RE = re.compile(r"driver::(kTag\w+)")


def cross_check_registry(base, findings):
    """Cross-checks the three views of the tag registry against each other
    and against the protospec edge tables. Silently skipped when the
    scanned tree does not contain the registry (extra dirs, test trees)."""
    tags_path = base / TAGS_HEADER
    if not tags_path.is_file():
        return
    text = strip_comments(tags_path.read_text(encoding="utf-8"))
    enum_tags = set(ENUM_RE.findall(text))
    m = ALLTAGS_RE.search(text)
    all_tags = set(re.findall(r"kTag\w+", m.group("body"))) if m else set()
    case_tags = set(CASE_RE.findall(text))
    if not enum_tags:
        findings.append(f"{TAGS_HEADER}: no `kTag* = N` enumerators parsed")
    for name, have, missing_in in (
        ("detail::kAllTags", all_tags, enum_tags - all_tags),
        ("tag_name() switch", case_tags, enum_tags - case_tags),
    ):
        for tag in sorted(missing_in):
            findings.append(
                f"{TAGS_HEADER}: {tag} is declared in enum Tag but missing "
                f"from {name}"
            )
        for tag in sorted(have - enum_tags):
            findings.append(
                f"{TAGS_HEADER}: {tag} appears in {name} but is not an "
                f"enum Tag enumerator"
            )

    spec_path = base / SPEC_TABLE
    if not spec_path.is_file():
        return
    spec_text = strip_comments(spec_path.read_text(encoding="utf-8"))
    spec_tags = set(SPEC_TAG_RE.findall(spec_text))
    for tag in sorted(enum_tags - spec_tags):
        findings.append(
            f"{SPEC_TABLE}: registered tag {tag} is carried by no protocol-"
            f"spec edge (add the edge or retire the tag)"
        )
    for tag in sorted(spec_tags - enum_tags):
        findings.append(
            f"{SPEC_TABLE}: spec edge names {tag}, which {TAGS_HEADER} does "
            f"not register"
        )


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    findings = []
    scanned = 0
    for root in argv[1:]:
        base = Path(root)
        if not base.is_dir():
            print(f"lint_tags: not a directory: {root}", file=sys.stderr)
            return 2
        cross_check_registry(base, findings)
        for path in sorted(base.rglob("*")):
            if path.suffix not in {".h", ".cpp", ".cc", ".hpp"}:
                continue
            rel = path.relative_to(base).as_posix()
            if rel in ALLOWED_FILES:
                continue
            scanned += 1
            lint_file(path, rel, findings)
    for f in findings:
        print(f)
    print(
        f"lint_tags: {scanned} files scanned, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
