// Example: virtual partitioning without any driver.
//
// Demonstrates the paper's §3.1 mechanism directly through the seqdb API:
// one set of global formatted files is split into arbitrary numbers of
// virtual fragments at "run time" by computing byte ranges from the index,
// and a fragment is reconstructed from raw byte slices exactly as a
// pioBLAST worker does with MPI-IO. Contrast with mpiformatdb, which
// writes one physical volume set per fragment.
//
//   ./build/examples/dynamic_partitioning
#include <cstdio>

#include "pario/vfs.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"
#include "util/units.h"

using namespace pioblast;

int main() {
  seqdb::GeneratorConfig gen;
  gen.target_residues = 512u << 10;
  gen.seed = 5;
  const auto db = seqdb::generate_database(gen);

  pario::VirtualFS fs;

  // --- the mpiBLAST way: physical pre-partitioning ---------------------
  const auto parts31 =
      seqdb::mpiformatdb(fs, db, "static", seqdb::SeqType::kProtein, "db", 31);
  std::printf("mpiformatdb with 31 fragments wrote %zu files (%s)\n",
              fs.list().size(), util::format_bytes(fs.total_bytes()).c_str());
  std::printf("...and must be re-run to get any other fragment count.\n\n");

  // --- the pioBLAST way: one global volume set, any split --------------
  pario::VirtualFS global_fs;
  const auto fmt = seqdb::format_db(global_fs, db, "nr",
                                    seqdb::SeqType::kProtein, "global db");
  const auto names = seqdb::volume_names("nr", seqdb::SeqType::kProtein);
  std::printf("formatdb wrote %zu global files (%s)\n", global_fs.list().size(),
              util::format_bytes(global_fs.total_bytes()).c_str());

  for (int fragments : {4, 31, 61, 167}) {
    const auto ranges = seqdb::virtual_partition(fmt.index, fragments);
    std::uint64_t min_bytes = ~0ull, max_bytes = 0;
    for (const auto& fr : ranges) {
      min_bytes = std::min(min_bytes, fr.psq.length);
      max_bytes = std::max(max_bytes, fr.psq.length);
    }
    std::printf(
        "virtual partition into %3d fragments: residue ranges %s..%s "
        "(imbalance %.1f%%) — no new files\n",
        fragments, util::format_bytes(min_bytes).c_str(),
        util::format_bytes(max_bytes).c_str(),
        100.0 * (static_cast<double>(max_bytes) - static_cast<double>(min_bytes)) /
            static_cast<double>(max_bytes));
  }

  // Reconstruct fragment #2 of 7 from raw byte ranges, as a worker would
  // after its MPI-IO reads, and verify it against the source records.
  const auto ranges = seqdb::virtual_partition(fmt.index, 7);
  const auto& fr = ranges[2];
  seqdb::DbIndex hdr;
  hdr.type = seqdb::SeqType::kProtein;
  const auto frag = seqdb::fragment_from_slices(
      hdr, fr,
      global_fs.pread(names.index, fr.pin_seq_off.offset, fr.pin_seq_off.length),
      global_fs.pread(names.index, fr.pin_hdr_off.offset, fr.pin_hdr_off.length),
      global_fs.pread(names.sequence, fr.psq.offset, fr.psq.length),
      global_fs.pread(names.header, fr.phr.offset, fr.phr.length));
  std::printf(
      "\nfragment 2/7 rebuilt from byte slices: %llu sequences, first defline "
      "\"%.40s\"\n",
      static_cast<unsigned long long>(frag.num_seqs()),
      std::string(frag.defline(0)).c_str());
  const auto& expect = db[fr.seqs.first];
  std::printf("matches source record: %s\n",
              frag.defline(0) == expect.defline() ? "yes" : "NO");
  (void)parts31;
  return 0;
}
