// Quickstart: generate a small synthetic protein database, format it, and
// search the same sampled query set with mpiBLAST (baseline) and pioBLAST,
// on a simulated 8-rank ORNL-Altix-style cluster. Prints the phase
// breakdown of both runs and verifies the two output files are identical.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "blast/job.h"
#include "mpiblast/mpiblast.h"
#include "pioblast/pioblast.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"
#include "util/table.h"
#include "util/units.h"

using namespace pioblast;

int main() {
  const int nprocs = 8;
  const sim::ClusterConfig cluster = sim::ClusterConfig::ornl_altix();

  // 1. Synthesize a database and a query set sampled from it (the paper
  //    samples its query sets from GenBank nr itself).
  seqdb::GeneratorConfig gen;
  gen.target_residues = 512u << 10;  // ~0.5 M residues
  gen.seed = 42;
  const auto db_records = seqdb::generate_database(gen);
  const auto queries = seqdb::sample_queries(db_records, 8u << 10, /*seed=*/7);
  std::printf("database: %zu sequences, query set: %zu queries\n",
              db_records.size(), queries.size());

  // 2. Stage the data on the shared file system and format it.
  pario::ClusterStorage storage(cluster, nprocs);
  const std::string query_fasta = seqdb::write_fasta(queries);
  storage.shared().write_all(
      "queries.fa", std::span(reinterpret_cast<const std::uint8_t*>(
                                  query_fasta.data()),
                              query_fasta.size()));

  blast::JobConfig job;
  job.db_base = "nr";
  job.db_title = "synthetic nr";
  job.query_path = "queries.fa";
  job.params = blast::SearchParams::blastp_defaults();
  job.params.hitlist_size = 50;

  // mpiBLAST needs physical fragments (mpiformatdb); pioBLAST only needs
  // the plain formatted database.
  const auto parts = seqdb::mpiformatdb(storage.shared(), db_records, job.db_base,
                                        job.params.type, job.db_title,
                                        /*nfragments=*/nprocs - 1);

  // 3. Run both drivers.
  mpiblast::MpiBlastOptions mpi_opts;
  mpi_opts.job = job;
  mpi_opts.job.output_path = "results.mpiblast.txt";
  mpi_opts.fragment_bases = parts.fragment_bases;
  mpi_opts.fragment_ranges = parts.ranges;
  mpi_opts.global_index = parts.global_index;
  const auto mpi_result = mpiblast::run_mpiblast(cluster, nprocs, storage, mpi_opts);

  pio::PioBlastOptions pio_opts;
  pio_opts.job = job;
  pio_opts.job.output_path = "results.pioblast.txt";
  const auto pio_result = pio::run_pioblast(cluster, nprocs, storage, pio_opts);

  // 4. Report.
  util::Table table({"Program", "Copy/Input", "Search", "Output", "Other",
                     "Total", "Search %"});
  auto row = [&](const char* name, const blast::PhaseBreakdown& ph) {
    table.add_row({name, util::fixed(ph.copy_input, 2), util::fixed(ph.search, 2),
                   util::fixed(ph.output, 2), util::fixed(ph.other, 2),
                   util::fixed(ph.total, 2),
                   util::format_percent(ph.search_fraction())});
  };
  row("mpiBLAST", mpi_result.phases);
  row("pioBLAST", pio_result.phases);
  table.print(std::cout);
  std::printf("\noutput size: %s (%llu alignments)\n",
              util::format_bytes(pio_result.output_bytes).c_str(),
              static_cast<unsigned long long>(pio_result.alignments_reported));
  std::printf("candidates screened by master: mpiBLAST=%llu pioBLAST=%llu\n",
              static_cast<unsigned long long>(mpi_result.candidates_merged),
              static_cast<unsigned long long>(pio_result.candidates_merged));

  // 5. The two programs must produce byte-identical output.
  const auto a = storage.shared().read_all("results.mpiblast.txt");
  const auto b = storage.shared().read_all("results.pioblast.txt");
  if (a != b) {
    std::printf("ERROR: outputs differ (mpiBLAST %zu bytes, pioBLAST %zu bytes)\n",
                a.size(), b.size());
    return 1;
  }
  std::printf("outputs identical: yes (%zu bytes)\n", a.size());
  return 0;
}
