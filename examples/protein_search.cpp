// Example: a realistic protein search session.
//
// Models the workflow the paper's users run daily: format a protein
// database once (formatdb), then search several query batches against it
// with pioBLAST on a 16-process cluster, printing a summary of the top
// hits per query plus an excerpt of the NCBI-style report.
//
//   ./build/examples/protein_search
#include <cstdio>
#include <string>

#include "blast/job.h"
#include "pioblast/pioblast.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"
#include "util/units.h"

using namespace pioblast;

int main() {
  const int nprocs = 16;
  const auto cluster = sim::ClusterConfig::ornl_altix();

  // A protein database with strong family structure (nr-like redundancy).
  seqdb::GeneratorConfig gen;
  gen.target_residues = 1u << 20;
  gen.seed = 2005;
  gen.family_fraction = 0.6;
  gen.id_prefix = "prot";
  const auto db = seqdb::generate_database(gen);

  pario::ClusterStorage storage(cluster, nprocs);
  seqdb::format_db(storage.shared(), db, "protdb", seqdb::SeqType::kProtein,
                   "example protein db");
  std::printf("formatted %zu sequences (%s raw residues)\n", db.size(),
              util::format_bytes(1u << 20).c_str());

  // Three query batches, as a user iterating on an analysis would submit.
  for (int batch = 0; batch < 3; ++batch) {
    const auto queries =
        seqdb::sample_queries(db, 4u << 10, 1000 + static_cast<std::uint64_t>(batch));
    const std::string fasta = seqdb::write_fasta(queries);
    storage.shared().write_all(
        "batch.fa", std::span(reinterpret_cast<const std::uint8_t*>(fasta.data()),
                              fasta.size()));

    pio::PioBlastOptions opts;
    opts.job.db_base = "protdb";
    opts.job.db_title = "example protein db";
    opts.job.query_path = "batch.fa";
    opts.job.output_path = "batch" + std::to_string(batch) + ".out";
    opts.job.params = blast::SearchParams::blastp_defaults();
    opts.job.params.hitlist_size = 5;

    const auto result = pio::run_pioblast(cluster, nprocs, storage, opts);
    std::printf(
        "batch %d: %zu queries -> %llu alignments, output %s, virtual time "
        "%.2f s (search %.0f%%)\n",
        batch, queries.size(),
        static_cast<unsigned long long>(result.alignments_reported),
        util::format_bytes(result.output_bytes).c_str(), result.phases.total,
        100 * result.phases.search_fraction());
  }

  // Show the first report excerpt.
  const auto report = storage.shared().read_all("batch0.out");
  const std::string text(report.begin(),
                         report.begin() + std::min<std::size_t>(report.size(), 1200));
  std::printf("\n--- report excerpt ---\n%s...\n", text.c_str());
  return 0;
}
