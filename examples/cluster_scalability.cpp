// Example: capacity planning with the cluster simulator.
//
// A user deciding how many nodes to request (and which machine to run on)
// sweeps both drivers over process counts on the Altix-like and the
// NFS-blade-like clusters, then reads off where adding workers stops
// paying. Exercises the public API end to end: cluster presets, storage
// environments, mpiformatdb, and both drivers.
//
//   ./build/examples/cluster_scalability
#include <cstdio>
#include <iostream>

#include "blast/job.h"
#include "mpiblast/mpiblast.h"
#include "pioblast/pioblast.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"
#include "util/table.h"

using namespace pioblast;

namespace {

blast::DriverResult run_once(const sim::ClusterConfig& cluster, int nprocs,
                             const std::vector<seqdb::FastaRecord>& db,
                             const std::string& query_fasta, bool use_pioblast) {
  pario::ClusterStorage storage(cluster, nprocs);
  storage.shared().write_all(
      "q.fa", std::span(reinterpret_cast<const std::uint8_t*>(query_fasta.data()),
                        query_fasta.size()));
  blast::JobConfig job;
  job.db_base = "db";
  job.db_title = "scalability example db";
  job.query_path = "q.fa";
  job.output_path = "out.txt";
  job.params = blast::SearchParams::blastp_defaults();
  job.params.hitlist_size = 5;

  if (use_pioblast) {
    seqdb::format_db(storage.shared(), db, job.db_base, job.params.type,
                     job.db_title);
    pio::PioBlastOptions opts;
    opts.job = job;
    return pio::run_pioblast(cluster, nprocs, storage, opts);
  }
  const auto parts = seqdb::mpiformatdb(storage.shared(), db, job.db_base,
                                        job.params.type, job.db_title,
                                        nprocs - 1);
  mpiblast::MpiBlastOptions opts;
  opts.job = job;
  opts.fragment_bases = parts.fragment_bases;
  opts.fragment_ranges = parts.ranges;
  opts.global_index = parts.global_index;
  return mpiblast::run_mpiblast(cluster, nprocs, storage, opts);
}

}  // namespace

int main() {
  seqdb::GeneratorConfig gen;
  gen.target_residues = 768u << 10;
  gen.seed = 31415;
  gen.family_fraction = 0.6;
  const auto db = seqdb::generate_database(gen);
  const auto query_fasta =
      seqdb::write_fasta(seqdb::sample_queries(db, 6u << 10, 27));

  for (const bool nfs : {false, true}) {
    const auto cluster =
        nfs ? sim::ClusterConfig::ncsu_blade() : sim::ClusterConfig::ornl_altix();
    std::printf("=== cluster: %s ===\n", cluster.name.c_str());
    util::Table table({"Procs", "mpiBLAST total (s)", "pioBLAST total (s)",
                       "pioBLAST speedup"});
    for (int nprocs : {4, 8, 16}) {
      const auto mpi = run_once(cluster, nprocs, db, query_fasta, false);
      const auto pio = run_once(cluster, nprocs, db, query_fasta, true);
      table.add_row({std::to_string(nprocs),
                     util::fixed(mpi.phases.total, 2),
                     util::fixed(pio.phases.total, 2),
                     util::fixed(mpi.phases.total / pio.phases.total, 2) + "x"});
    }
    table.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
