// Table 1 reproduction: breakdown of execution time for mpiBLAST and
// pioBLAST searching the default (150 KB-analogue) query set against the
// nr database with 32 processes and natural partitioning (31 fragments).
//
// Paper reference (seconds on the ORNL Altix):
//   mpiBLAST:  Copy 17.1 | Search 318.5 | Output 1007.2 | Other 11.3 | 1354.1
//   pioBLAST:  Input 0.4 | Search 281.7 | Output   15.4 | Other 10.4 |  307.9
// Expected shape: pioBLAST removes the copy stage (sub-second input),
// matches search, and shrinks output by an order of magnitude or more.
#include <cstdio>
#include <iostream>

#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

int main(int argc, char** argv) {
  const int nprocs = 32;
  const auto& db = bench::nr_database();
  const auto queries =
      bench::make_query_set(db, bench::QuerySizes::kDefault);
  const auto cluster = bench::altix();
  const auto job = bench::nr_job();

  bench::print_banner(
      "Table 1: phase breakdown, 32 processes, nr database",
      "db=" + std::to_string(db.size()) + " sequences, query set=" +
          std::to_string(queries.size()) + " bytes, cluster=" + cluster.name);

  const auto mpi =
      bench::run_mpiblast_job(cluster, nprocs, db, queries, job, nprocs - 1);
  const auto pio = bench::run_pioblast_job(cluster, nprocs, db, queries, job);

  util::Table table({"Program", "Copy/Input", "Search", "Output", "Other",
                     "Total", "Search %"});
  auto row = [&](const char* name, const blast::PhaseBreakdown& ph) {
    table.add_row({name, util::fixed(ph.copy_input, 2), util::fixed(ph.search, 2),
                   util::fixed(ph.output, 2), util::fixed(ph.other, 2),
                   util::fixed(ph.total, 2),
                   util::format_percent(ph.search_fraction())});
  };
  row("mpiBLAST", mpi.phases);
  row("pioBLAST", pio.phases);
  table.print(std::cout);

  std::printf("\noutput: %s, alignments: %llu\n",
              util::format_bytes(pio.output_bytes).c_str(),
              static_cast<unsigned long long>(pio.alignments_reported));
  std::printf("candidates screened: mpiBLAST=%llu pioBLAST=%llu\n",
              static_cast<unsigned long long>(mpi.candidates_merged),
              static_cast<unsigned long long>(pio.candidates_merged));
  std::printf("result-submission bytes to master: mpiBLAST=%llu pioBLAST=%llu\n",
              static_cast<unsigned long long>(
                  mpi.report.ranks.size() ? mpi.report.ranks[1].bytes_sent : 0),
              static_cast<unsigned long long>(
                  pio.report.ranks.size() ? pio.report.ranks[1].bytes_sent : 0));
  std::printf("speedup (total): %.2fx; output-phase speedup: %.2fx\n",
              mpi.phases.total / pio.phases.total,
              mpi.phases.output / std::max(pio.phases.output, 1e-9));
  bench::emit_metrics("mpiblast", mpi);
  bench::emit_metrics("pioblast", pio);
  return bench::finish(table, argc, argv);
}
