// Figure 3(b) reproduction: output-size scalability at a fixed 62
// processes — both programs across the four query-set sizes of Table 2.
//
// Paper reference: both totals grow roughly with the output size; mpiBLAST
// is dominated by result output time, pioBLAST by search time, and
// pioBLAST's non-search time less than doubles from the smallest to the
// largest output while mpiBLAST's grows much faster.
#include <iostream>

#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

int main(int argc, char** argv) {
  const int nprocs = 62;
  const auto& db = bench::nr_database();
  const auto cluster = bench::altix();
  const auto job = bench::nr_job();

  bench::print_banner("Figure 3(b): output scalability at 62 processes",
                      "nr-analogue database, query sets scaled from Table 2");

  util::Table table({"Program-Output", "Search (s)", "Other (s)", "Total (s)",
                     "Output size"});
  double mpi_other_first = -1, mpi_other_last = 0;
  double pio_other_first = -1, pio_other_last = 0;
  for (const std::uint64_t target :
       {bench::QuerySizes::kSmall, bench::QuerySizes::kMedium,
        bench::QuerySizes::kDefault, bench::QuerySizes::kLarge}) {
    const auto queries = bench::make_query_set(db, target);
    const auto mpi =
        bench::run_mpiblast_job(cluster, nprocs, db, queries, job, nprocs - 1);
    const auto pio = bench::run_pioblast_job(cluster, nprocs, db, queries, job);
    const std::string size = util::format_bytes(mpi.output_bytes);
    const double mpi_other = mpi.phases.total - mpi.phases.search;
    const double pio_other = pio.phases.total - pio.phases.search;
    table.add_row({"mpi-" + size, util::fixed(mpi.phases.search, 2),
                   util::fixed(mpi_other, 2), util::fixed(mpi.phases.total, 2),
                   size});
    table.add_row({"pio-" + size, util::fixed(pio.phases.search, 2),
                   util::fixed(pio_other, 2), util::fixed(pio.phases.total, 2),
                   util::format_bytes(pio.output_bytes)});
    if (mpi_other_first < 0) {
      mpi_other_first = mpi_other;
      pio_other_first = pio_other;
    }
    mpi_other_last = mpi_other;
    pio_other_last = pio_other;
  }
  table.print(std::cout);
  std::printf(
      "\nnon-search growth smallest->largest output: mpiBLAST %.2fx, "
      "pioBLAST %.2fx\n",
      mpi_other_last / std::max(mpi_other_first, 1e-9),
      pio_other_last / std::max(pio_other_first, 1e-9));
  return bench::finish(table, argc, argv);
}
