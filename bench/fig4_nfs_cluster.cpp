// Figure 4 reproduction: process scalability on the NCSU blade-cluster
// analogue (gigabit Ethernet, NFS shared storage, node-local disks),
// processes in {4, 8, 16, 32}.
//
// Paper reference: the same trends as on the Altix, but the slow shared
// file system hurts both programs — pioBLAST's search fraction degrades
// from 93% at 4 processes to 64% at 32 (vs staying >90% on the Altix),
// while mpiBLAST degrades far worse (50% -> 14%), and mpiBLAST's search
// time itself stops scaling because its search phase embeds NFS I/O.
#include <iostream>

#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

int main(int argc, char** argv) {
  const auto& db = bench::nr_database();
  const auto queries = bench::make_query_set(db, bench::QuerySizes::kDefault);
  const auto cluster = bench::blade();
  const auto job = bench::nr_job();

  bench::print_banner("Figure 4: process scalability on the NFS blade cluster",
                      "nr-analogue database, NFS shared storage + local "
                      "disks, processes in {4, 8, 16, 32}");

  util::Table table({"Program-Procs", "Search (s)", "Other (s)", "Total (s)",
                     "Search %"});
  auto add = [&](const std::string& name, const blast::DriverResult& r) {
    table.add_row({name, util::fixed(r.phases.search, 2),
                   util::fixed(r.phases.total - r.phases.search, 2),
                   util::fixed(r.phases.total, 2),
                   util::format_percent(r.phases.search_fraction())});
  };
  for (int nprocs : {4, 8, 16, 32}) {
    add("mpi-" + std::to_string(nprocs),
        bench::run_mpiblast_job(cluster, nprocs, db, queries, job, nprocs - 1));
    add("pio-" + std::to_string(nprocs),
        bench::run_pioblast_job(cluster, nprocs, db, queries, job));
  }
  table.print(std::cout);
  return bench::finish(table, argc, argv);
}
