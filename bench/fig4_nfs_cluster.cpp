// Figure 4 reproduction: process scalability on the NCSU blade-cluster
// analogue (gigabit Ethernet, NFS shared storage, node-local disks),
// processes in {4, 8, 16, 32} — plus the pario v2 sieving/buffering sweep
// that measures, in isolation, how the noncontiguous-read strategies fare
// on the NFS storage model.
//
// Paper reference: the same trends as on the Altix, but the slow shared
// file system hurts both programs — pioBLAST's search fraction degrades
// from 93% at 4 processes to 64% at 32 (vs staying >90% on the Altix),
// while mpiBLAST degrades far worse (50% -> 14%), and mpiBLAST's search
// time itself stops scaling because its search phase embeds NFS I/O.
//
// The pario sweep is the Thakur/Gropp/Lusk experiment shape: every rank
// owns a hole-y band of a shared file (strided 4 KiB blocks, ~50% useful
// density) and fetches it three ways —
//   naive  one exact device read per block (list=off): every op pays the
//          NFS per-request setup, which the single server multiplies by
//          the client count;
//   sieve  pario v2 defaults: requests merge into runs and data sieving
//          bridges the holes, so each rank issues one covering read;
//   cbuf   collective read with cb_nodes aggregators and cb_buffer_size
//          exchange rounds: few clients, large sequential reads.
// One machine-readable `ROW {...}` JSON line is emitted per measurement;
// tools/bench_to_json.py folds them into BENCH_pario.json.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mpisim/runtime.h"
#include "pario/env.h"
#include "pario/file.h"
#include "util/args.h"
#include "util/error.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

namespace {

std::vector<int> parse_ranks(const std::string& spec) {
  std::vector<int> out;
  std::istringstream in(spec);
  std::string field;
  while (std::getline(in, field, ',')) {
    if (field.empty()) continue;
    const int n = std::stoi(field);
    if (n < 2) throw util::RuntimeError("--ranks: world size must be >= 2");
    out.push_back(n);
  }
  if (out.empty()) throw util::RuntimeError("--ranks: empty list");
  return out;
}

void emit_driver_row(const char* driver, int nprocs,
                     const blast::DriverResult& r) {
  std::printf(
      "ROW {\"bench\":\"fig4\",\"kind\":\"driver\",\"driver\":\"%s\","
      "\"procs\":%d,\"search_s\":%.6f,\"other_s\":%.6f,\"total_s\":%.6f,"
      "\"search_frac\":%.4f}\n",
      driver, nprocs, r.phases.search, r.phases.total - r.phases.search,
      r.phases.total, r.phases.search_fraction());
}

// ---- pario v2 sweep -------------------------------------------------------

/// Strided-block access pattern: each rank owns a band of `kBlocks` useful
/// blocks of `kBlock` bytes separated by `kHole`-byte holes (useful
/// density kBlock/(kBlock+kHole) = 50%, above the default ds_density).
struct Pattern {
  static constexpr std::uint64_t kBlock = 4096;
  static constexpr std::uint64_t kHole = 4096;
  static constexpr std::uint64_t kBlocks = 48;
  static constexpr std::uint64_t kBandSpan = kBlocks * (kBlock + kHole);

  static std::vector<pario::Region> band(int rank) {
    const std::uint64_t base = static_cast<std::uint64_t>(rank) * kBandSpan;
    std::vector<pario::Region> regions;
    regions.reserve(kBlocks);
    for (std::uint64_t b = 0; b < kBlocks; ++b)
      regions.push_back({base + b * (kBlock + kHole), kBlock});
    return regions;
  }

  static std::uint8_t fill(std::uint64_t offset) {
    return static_cast<std::uint8_t>((offset / kBlock) * 131 + offset);
  }
};

struct SweepResult {
  double io_s = 0;
  pario::ListIoStats stats;  ///< zero for the collective mode
};

/// Stages the shared file and runs one access mode across `nranks` ranks,
/// returning the virtual makespan of the I/O. The file lives on an
/// *unscaled* NFS model (sim::StorageModel::nfs_server()) so the sweep
/// measures the storage regime of Figure 4, not the bench's additional
/// database-size scaling.
SweepResult run_sweep(const sim::ClusterConfig& cluster, int nranks,
                      const std::string& mode) {
  pario::VirtualFS fs(sim::StorageModel::nfs_server());
  {
    std::vector<std::uint8_t> file(
        static_cast<std::size_t>(nranks) * Pattern::kBandSpan);
    for (std::size_t i = 0; i < file.size(); ++i)
      file[i] = Pattern::fill(i);
    fs.write_all("db", file);
  }

  std::vector<pario::ListIoStats> per_rank(static_cast<std::size_t>(nranks));
  const auto report = mpisim::run(nranks, cluster, [&](mpisim::Process& p) {
    const auto regions = Pattern::band(p.rank());
    std::vector<std::vector<std::uint8_t>> got;
    if (mode == "cbuf") {
      pario::Hints h;  // defaults: cb_nodes=4, cb_buffer_size=256k
      auto flat = pario::collective_read(p, fs, "db",
                                         pario::FileView(regions),
                                         h.collective());
      std::size_t pos = 0;
      for (const pario::Region& r : regions) {
        got.emplace_back(flat.begin() + static_cast<std::ptrdiff_t>(pos),
                         flat.begin() + static_cast<std::ptrdiff_t>(
                                            pos + r.length));
        pos += r.length;
      }
    } else {
      pario::Hints h;  // defaults: list on, ds auto (density 0.5 >= 0.3)
      if (mode == "naive") h.list_io = false;
      got = pario::list_read(p, fs, "db", regions, h, p.size(),
                             &per_rank[static_cast<std::size_t>(p.rank())]);
      p.barrier();  // the collective mode ends on a barrier; match it
    }
    for (std::size_t i = 0; i < regions.size(); ++i) {
      PIOBLAST_CHECK_MSG(got[i].size() == regions[i].length,
                         "sweep read came back short");
      for (std::size_t b = 0; b < got[i].size(); ++b)
        PIOBLAST_CHECK_MSG(got[i][b] == Pattern::fill(regions[i].offset + b),
                           "sweep read returned wrong bytes");
    }
  });

  SweepResult out;
  out.io_s = report.makespan();
  for (const pario::ListIoStats& s : per_rank) out.stats.add(s);
  return out;
}

void emit_sweep_row(const std::string& mode, int ranks, const SweepResult& r) {
  std::printf(
      "ROW {\"bench\":\"fig4\",\"kind\":\"pario\",\"mode\":\"%s\","
      "\"ranks\":%d,\"io_s\":%.6f,\"device_reads\":%llu,"
      "\"bytes_wanted\":%llu,\"bytes_read\":%llu}\n",
      mode.c_str(), ranks, r.io_s,
      static_cast<unsigned long long>(r.stats.reads_issued),
      static_cast<unsigned long long>(r.stats.bytes_wanted),
      static_cast<unsigned long long>(r.stats.bytes_read));
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("fig4_nfs_cluster",
                       "Figure 4: NFS blade cluster + pario v2 sweep");
  args.add("ranks", "4,8,16,32", "comma-separated world sizes")
      .add("drivers", "both",
           "driver comparison to run: both | mpiblast | pioblast | none");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error();
    return args.error().rfind("usage:", 0) == 0 ? 0 : 2;
  }
  const auto ranks = parse_ranks(args.get("ranks"));
  const std::string drivers = args.get("drivers");
  const bool run_mpi = drivers == "both" || drivers == "mpiblast";
  const bool run_pio = drivers == "both" || drivers == "pioblast";

  const auto cluster = bench::blade();

  bench::print_banner("Figure 4: process scalability on the NFS blade cluster",
                      "nr-analogue database, NFS shared storage + local "
                      "disks, plus the pario v2 sieving/buffering sweep");

  util::Table table({"Program-Procs", "Search (s)", "Other (s)", "Total (s)",
                     "Search %"});
  auto add = [&](const std::string& name, const blast::DriverResult& r) {
    table.add_row({name, util::fixed(r.phases.search, 2),
                   util::fixed(r.phases.total - r.phases.search, 2),
                   util::fixed(r.phases.total, 2),
                   util::format_percent(r.phases.search_fraction())});
  };
  if (run_mpi || run_pio) {
    const auto& db = bench::nr_database();
    const auto queries = bench::make_query_set(db, bench::QuerySizes::kDefault);
    const auto job = bench::nr_job();
    for (int nprocs : ranks) {
      if (run_mpi) {
        const auto r = bench::run_mpiblast_job(cluster, nprocs, db, queries,
                                               job, nprocs - 1);
        add("mpi-" + std::to_string(nprocs), r);
        emit_driver_row("mpiblast", nprocs, r);
      }
      if (run_pio) {
        const auto r = bench::run_pioblast_job(cluster, nprocs, db, queries, job);
        add("pio-" + std::to_string(nprocs), r);
        emit_driver_row("pioblast", nprocs, r);
      }
    }
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf("--- pario v2 noncontiguous-read sweep (NFS, strided 4 KiB "
              "blocks, 50%% density) ---\n");
  util::Table sweep({"Ranks", "Naive (s)", "Sieve (s)", "Cbuf (s)",
                     "Naive/Sieve", "Naive/Cbuf"});
  bool all_clear = true;
  for (const int n : ranks) {
    const auto naive = run_sweep(cluster, n, "naive");
    const auto sieve = run_sweep(cluster, n, "sieve");
    const auto cbuf = run_sweep(cluster, n, "cbuf");
    emit_sweep_row("naive", n, naive);
    emit_sweep_row("sieve", n, sieve);
    emit_sweep_row("cbuf", n, cbuf);
    sweep.add_row({std::to_string(n), util::fixed(naive.io_s, 3),
                   util::fixed(sieve.io_s, 3), util::fixed(cbuf.io_s, 3),
                   util::fixed(naive.io_s / sieve.io_s, 1) + "x",
                   util::fixed(naive.io_s / cbuf.io_s, 1) + "x"});
    // Acceptance gate: at >= 32 ranks the v2 strategies must beat the
    // naive independent-read path by >= 2x in simulated I/O time.
    if (n >= 32 && (naive.io_s < 2.0 * sieve.io_s ||
                    naive.io_s < 2.0 * cbuf.io_s)) {
      all_clear = false;
    }
  }
  sweep.print(std::cout);
  std::printf("v2 >= 2x naive at >= 32 ranks: %s\n",
              all_clear ? "yes" : "NO");

  if (!args.positional().empty()) {
    const char* pass[] = {argv[0], args.positional()[0].c_str()};
    return bench::finish(sweep, 2, pass);
  }
  return all_clear ? 0 : 1;
}
