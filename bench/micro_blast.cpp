// Micro-benchmarks of the BLAST engine stages (google-benchmark, real wall
// time): word-index construction, subject scanning, ungapped and gapped
// extension, and whole fragment searches in both protein and DNA modes.
#include <benchmark/benchmark.h>

#include "blast/engine.h"
#include "blast/format.h"
#include "pario/vfs.h"
#include "seqdb/generator.h"
#include "workloads.h"

using namespace pioblast;
using blast::ScoringMatrix;
using blast::SearchParams;

namespace {

struct ProteinFixture {
  std::vector<seqdb::FastaRecord> db;
  seqdb::LoadedFragment frag;
  blast::GlobalDbStats stats;
  ScoringMatrix matrix = ScoringMatrix::blosum62();
  SearchParams params = SearchParams::blastp_defaults();

  static const ProteinFixture& get() {
    static const ProteinFixture* f = [] {
      seqdb::GeneratorConfig cfg;
      cfg.target_residues = 256u << 10;
      cfg.seed = 7;
      cfg.family_fraction = 0.5;
      auto* fx = new ProteinFixture{
          seqdb::generate_database(cfg),
          [&cfg] {
            pario::VirtualFS fs;
            auto db2 = seqdb::generate_database(cfg);
            seqdb::format_db(fs, db2, "db", seqdb::SeqType::kProtein, "t");
            return seqdb::load_volumes(fs, "db", seqdb::SeqType::kProtein, 0);
          }(),
          {},
      };
      for (const auto& r : fx->db) fx->stats.total_residues += r.sequence.size();
      fx->stats.num_seqs = fx->db.size();
      return fx;
    }();
    return *f;
  }
};

void BM_WordIndexBuild(benchmark::State& state) {
  const auto& fx = ProteinFixture::get();
  const auto query =
      seqdb::encode_sequence(seqdb::SeqType::kProtein, fx.db[0].sequence);
  for (auto _ : state) {
    blast::WordIndex idx(query, fx.matrix, fx.params);
    benchmark::DoNotOptimize(idx.total_entries());
  }
  state.counters["query_len"] = static_cast<double>(query.size());
}
BENCHMARK(BM_WordIndexBuild);

void BM_FragmentSearchProtein(benchmark::State& state) {
  const auto& fx = ProteinFixture::get();
  const auto query = seqdb::encode_sequence(
      seqdb::SeqType::kProtein, fx.db[static_cast<std::size_t>(state.range(0))]
                                    .sequence);
  blast::QueryContext ctx(0, query, fx.params, fx.matrix, fx.stats);
  std::uint64_t residues = 0;
  for (auto _ : state) {
    auto result = blast::search_fragment(ctx, fx.frag);
    residues = result.counters.db_residues_scanned;
    benchmark::DoNotOptimize(result.hsps.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(residues) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FragmentSearchProtein)->Arg(0)->Arg(5)->Arg(17);

void BM_UngappedExtension(benchmark::State& state) {
  const auto& fx = ProteinFixture::get();
  const auto q =
      seqdb::encode_sequence(seqdb::SeqType::kProtein, fx.db[1].sequence);
  for (auto _ : state) {
    auto ext = blast::extend_ungapped(q, q, 10, 10, 3, fx.matrix, 16);
    benchmark::DoNotOptimize(ext.score);
  }
}
BENCHMARK(BM_UngappedExtension);

void BM_GappedExtension(benchmark::State& state) {
  const auto& fx = ProteinFixture::get();
  const auto q =
      seqdb::encode_sequence(seqdb::SeqType::kProtein, fx.db[1].sequence);
  std::uint64_t cells = 0;
  for (auto _ : state) {
    auto ext = blast::extend_gapped(q, q, static_cast<std::uint32_t>(q.size() / 2),
                                    q.size() / 2, fx.matrix, 11, 1, 38);
    cells = ext.cells;
    benchmark::DoNotOptimize(ext.score);
  }
  state.counters["dp_cells"] = static_cast<double>(cells);
}
BENCHMARK(BM_GappedExtension);

void BM_FragmentSearchDna(benchmark::State& state) {
  static const auto* setup = [] {
    seqdb::GeneratorConfig cfg;
    cfg.type = seqdb::SeqType::kNucleotide;
    cfg.target_residues = 512u << 10;
    cfg.seed = 8;
    cfg.family_fraction = 0.5;
    auto db = seqdb::generate_database(cfg);
    pario::VirtualFS fs;
    seqdb::format_db(fs, db, "nt", seqdb::SeqType::kNucleotide, "t");
    auto* pair = new std::pair<std::vector<seqdb::FastaRecord>,
                               seqdb::LoadedFragment>{
        db, seqdb::load_volumes(fs, "nt", seqdb::SeqType::kNucleotide, 0)};
    return pair;
  }();
  blast::GlobalDbStats stats;
  for (const auto& r : setup->first) stats.total_residues += r.sequence.size();
  stats.num_seqs = setup->first.size();
  const auto params = SearchParams::blastn_defaults();
  const auto matrix = blast::make_matrix(params);
  const auto query = seqdb::encode_sequence(seqdb::SeqType::kNucleotide,
                                            setup->first[2].sequence);
  blast::QueryContext ctx(0, query, params, matrix, stats);
  for (auto _ : state) {
    auto result = blast::search_fragment(ctx, setup->second);
    benchmark::DoNotOptimize(result.hsps.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(stats.total_residues) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FragmentSearchDna);

void BM_FormatAlignment(benchmark::State& state) {
  const auto& fx = ProteinFixture::get();
  const auto query =
      seqdb::encode_sequence(seqdb::SeqType::kProtein, fx.db[5].sequence);
  blast::QueryContext ctx(0, query, fx.params, fx.matrix, fx.stats);
  const auto result = blast::search_fragment(ctx, fx.frag);
  if (result.hsps.empty()) {
    state.SkipWithError("no HSPs to format");
    return;
  }
  const auto& hsp = result.hsps.front();
  const auto local = hsp.subject_global_id;
  for (auto _ : state) {
    auto text = blast::format_alignment(
        hsp, seqdb::SeqType::kProtein, query, fx.frag.sequence(local),
        fx.frag.defline(local), fx.frag.sequence(local).size(), fx.matrix);
    benchmark::DoNotOptimize(text.size());
  }
}
BENCHMARK(BM_FormatAlignment);

}  // namespace

BENCHMARK_MAIN();
