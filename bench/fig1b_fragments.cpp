// Figure 1(b) reproduction: mpiBLAST's sensitivity to the number of
// pre-generated database fragments, at a fixed 32 processes, searching the
// default query set against the nr-analogue database.
//
// Paper reference (fragments in {31, 61, 96, 167}): both search and
// non-search time rise with the fragment count — more fragments mean more
// per-fragment kernel overhead and a larger candidate-result volume for
// the master to screen — so overall performance degrades significantly.
// Expected shape: total time monotonically increasing in fragment count.
#include <iostream>

#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

int main(int argc, char** argv) {
  const int nprocs = 32;
  const auto& db = bench::nr_database();
  const auto queries = bench::make_query_set(db, bench::QuerySizes::kDefault);
  const auto cluster = bench::altix();
  const auto job = bench::nr_job();

  bench::print_banner("Figure 1(b): mpiBLAST vs number of fragments",
                      "nr-analogue database, 32 processes, fragments in "
                      "{31, 61, 96, 167}");

  util::Table table({"Fragments", "Search (s)", "Other (s)", "Total (s)",
                     "Candidates screened"});
  for (int nfragments : {31, 61, 96, 167}) {
    const auto r =
        bench::run_mpiblast_job(cluster, nprocs, db, queries, job, nfragments);
    const double other = r.phases.total - r.phases.search;
    table.add_row({std::to_string(nfragments), util::fixed(r.phases.search, 2),
                   util::fixed(other, 2), util::fixed(r.phases.total, 2),
                   std::to_string(r.candidates_merged)});
  }
  table.print(std::cout);
  return bench::finish(table, argc, argv);
}
