// Micro-study (wall time): cost of mpicheck's schedule exploration and of
// the happens-before race detector. Reports schedules/second for the
// master/worker queue under each exploration mode, and the serialized-run
// overhead the cooperative scheduler + detector add over a plain run —
// the numbers that size CI's mpicheck job budget.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "driver/metrics.h"
#include "driver/scheduler.h"
#include "driver/work_queue.h"
#include "mpicheck/explore.h"
#include "mpisim/runtime.h"
#include "util/table.h"
#include "workloads.h"

using namespace pioblast;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The checkable workload: the real serve_work queue moving `ntasks`
/// through `nranks - 1` workers.
void queue_job(mpisim::Process& p, int nranks, std::uint32_t ntasks,
               driver::RunMetrics* metrics) {
  if (p.is_root()) {
    auto sched = driver::make_scheduler(driver::SchedulerKind::kGreedyDynamic);
    driver::WorkerTopology topo;
    topo.nworkers = nranks - 1;
    topo.speed.assign(static_cast<std::size_t>(nranks - 1), 1.0);
    driver::serve_work(p, *sched, ntasks, topo, {}, metrics);
  } else {
    while (driver::request_work<std::uint32_t>(
        p, [](std::uint32_t id, mpisim::Decoder&) { return id; })) {
    }
  }
}

mpicheck::Checker::Job checker_job(const sim::ClusterConfig& cluster,
                                   int nranks, std::uint32_t ntasks,
                                   mpisim::ExecModel exec) {
  return [cluster, nranks, ntasks, exec](mpisim::ScheduleHook* schedule,
                                         mpisim::RaceHook* race) {
    mpisim::RunOptions opts;
    opts.schedule = schedule;
    opts.race = race;
    opts.exec_model = exec;
    driver::RunMetrics metrics;
    mpisim::run(
        nranks, cluster,
        [&](mpisim::Process& p) { queue_job(p, nranks, ntasks, &metrics); },
        opts);
  };
}

struct Mode {
  const char* name;
  mpicheck::CheckOptions opts;
};

}  // namespace

int main() {
  bench::print_banner("Micro: mpicheck exploration & race-detector cost",
                      "serve_work queue, wall-clock time");
  const auto cluster = bench::altix();

  std::printf("exploration modes (4 ranks, 8 tasks):\n");
  Mode modes[3];
  modes[0].name = "random x100";
  modes[0].opts.random_schedules = 100;
  modes[0].opts.preemption_bound = -1;
  modes[0].opts.dpor = false;
  modes[1].name = "preempt<=1";
  modes[1].opts.random_schedules = 0;
  modes[1].opts.preemption_bound = 1;
  modes[1].opts.dpor = false;
  modes[1].opts.max_schedules = 400;
  modes[2].name = "dpor (capped)";
  modes[2].opts.random_schedules = 0;
  modes[2].opts.preemption_bound = -1;
  modes[2].opts.dpor = true;
  modes[2].opts.max_schedules = 400;

  util::Table table({"Mode", "Exec", "Schedules", "Pruned", "Decisions",
                     "Wall (s)", "Sched/s"});
  for (const Mode& mode : modes) {
    for (const auto exec :
         {mpisim::ExecModel::kThreads, mpisim::ExecModel::kEvents}) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto res =
          mpicheck::Checker(checker_job(cluster, 4, 8, exec), mode.opts).run();
      const double wall = seconds_since(t0);
      table.add_row({mode.name, mpisim::to_string(exec),
                     std::to_string(res.schedules_explored),
                     std::to_string(res.schedules_pruned),
                     std::to_string(res.max_decisions), util::fixed(wall, 2),
                     util::fixed(static_cast<double>(res.schedules_explored) /
                                     wall,
                                 0)});
    }
  }
  table.print(std::cout);

  std::printf("\nper-run overhead (100 repeats, 4 ranks, 8 tasks):\n");
  // Both execution backends (mpisim/exec.h): under "events" the ranks are
  // fibers on one scheduler thread and the CoopScheduler degrades to a
  // thin chooser over the native event loop, so the coop rows measure how
  // much of the threaded scheduler's overhead was cross-thread handoff.
  // Every "vs plain" ratio is relative to the plain threaded run.
  util::Table over({"Harness", "Exec", "Wall (s)", "vs plain threads"});
  constexpr int kRepeats = 100;
  double plain = 0;
  for (const auto exec :
       {mpisim::ExecModel::kThreads, mpisim::ExecModel::kEvents}) {
    for (int mode = 0; mode < 3; ++mode) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kRepeats; ++i) {
        mpicheck::CoopScheduler coop;
        mpicheck::RaceDetector det;
        mpisim::RunOptions opts;
        opts.exec_model = exec;
        if (mode >= 1) opts.schedule = &coop;
        if (mode >= 2) opts.race = &det;
        driver::RunMetrics metrics;
        mpisim::run(
            4, cluster,
            [&](mpisim::Process& p) { queue_job(p, 4, 8, &metrics); }, opts);
      }
      const double wall = seconds_since(t0);
      const bool is_baseline =
          mode == 0 && exec == mpisim::ExecModel::kThreads;
      if (is_baseline) plain = wall;
      const char* name = mode == 0   ? "plain"
                         : mode == 1 ? "coop schedule"
                                     : "coop + race detector";
      over.add_row({name, mpisim::to_string(exec), util::fixed(wall, 2),
                    is_baseline ? "1.0x"
                                : util::fixed(wall / plain, 1) + "x"});
    }
  }
  over.print(std::cout);
  return 0;
}
