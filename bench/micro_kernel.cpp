// Micro-benchmark (real wall time) of the search kernels: the scalar
// reference engine vs the fast path (per-assignment fragment indexing,
// flat offset-compacted neighborhood table, batched query processing,
// SWAR/arena extension loops). Both kernels produce bit-identical HSPs
// and counters — the kernel differential suite enforces that — so this
// bench measures pure host-side throughput on identical work.
//
// Reported rates use the engine's own deterministic counters: "cells" are
// extension DP cells (ungapped + gapped + traceback) and "seeds" are word
// hits examined, both identical across kernels by construction. One
// machine-readable `ROW {...}` line per (type, kernel) plus a summary row
// per type; tools/bench_to_json.py folds them into BENCH_kernel.json.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "blast/engine.h"
#include "blast/query_set.h"
#include "pario/vfs.h"
#include "seqdb/generator.h"
#include "util/args.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct KernelRun {
  double wall = 0;
  std::uint64_t cells = 0;
  std::uint64_t seeds = 0;
  std::uint64_t hsps = 0;
};

/// Runs the whole query batch against the fragment `repeats` times with
/// the given kernel and accumulates wall time; counters are taken from one
/// pass (they are per-pass deterministic).
KernelRun run_kernel(std::span<const blast::QueryContext> contexts,
                     const seqdb::LoadedFragment& frag,
                     blast::KernelKind kernel, int repeats) {
  KernelRun out;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<blast::FragmentSearchResult> results;
  for (int r = 0; r < repeats; ++r)
    results = blast::search_fragment_batch(contexts, frag, kernel);
  out.wall = seconds_since(t0) / repeats;
  for (const auto& res : results) {
    out.cells += res.counters.ungapped_cells + res.counters.gapped_cells +
                 res.counters.traceback_cells;
    out.seeds += res.counters.seed_hits;
    out.hsps += res.counters.hsps_found;
  }
  return out;
}

void emit_row(const char* type, const char* kernel, const KernelRun& r) {
  std::printf(
      "ROW {\"bench\":\"micro_kernel\",\"type\":\"%s\",\"kernel\":\"%s\","
      "\"wall_s\":%.6f,\"cells\":%llu,\"cells_per_s\":%.0f,"
      "\"seeds\":%llu,\"seeds_per_s\":%.0f,\"hsps\":%llu}\n",
      type, kernel, r.wall, static_cast<unsigned long long>(r.cells),
      static_cast<double>(r.cells) / r.wall,
      static_cast<unsigned long long>(r.seeds),
      static_cast<double>(r.seeds) / r.wall,
      static_cast<unsigned long long>(r.hsps));
}

void bench_type(seqdb::SeqType type, std::uint64_t residues,
                std::uint64_t query_bytes, std::uint64_t query_chunk,
                int repeats, util::Table& table) {
  const char* name = type == seqdb::SeqType::kProtein ? "protein" : "dna";

  seqdb::GeneratorConfig gen;
  gen.type = type;
  gen.target_residues = residues;
  gen.seed = type == seqdb::SeqType::kProtein ? 42 : 43;
  gen.family_fraction = 0.55;
  const auto db = seqdb::generate_database(gen);
  auto queries = seqdb::sample_queries(db, query_bytes, 7);
  if (query_chunk > 0) {
    // Slice the sampled records into fixed-length queries: the batched
    // kernel's target regime is many short queries against one fragment
    // (EST/read-style searches), where the scalar path re-scans the
    // fragment once per query. Chunks stay substrings of database family
    // members, so hit lists remain rich.
    std::vector<seqdb::FastaRecord> chunked;
    for (const auto& q : queries) {
      for (std::size_t off = 0; off < q.sequence.size(); off += query_chunk) {
        seqdb::FastaRecord rec;
        rec.id = "query_" + std::to_string(chunked.size());
        rec.sequence = q.sequence.substr(off, query_chunk);
        chunked.push_back(std::move(rec));
      }
    }
    queries = std::move(chunked);
  }

  pario::VirtualFS fs;
  seqdb::format_db(fs, db, "db", type, "bench");
  const auto frag = seqdb::load_volumes(fs, "db", type, 0);

  blast::GlobalDbStats stats;
  stats.num_seqs = db.size();
  for (const auto& r : db) stats.total_residues += r.sequence.size();

  auto params = type == seqdb::SeqType::kProtein
                    ? blast::SearchParams::blastp_defaults()
                    : blast::SearchParams::blastn_defaults();
  const auto matrix = blast::make_matrix(params);
  std::vector<blast::QueryContext> contexts;
  for (const auto& q : queries) {
    contexts.emplace_back(
        static_cast<std::uint32_t>(contexts.size()),
        seqdb::encode_sequence(type, q.sequence), params, matrix, stats);
  }

  // Warm-up pass (page in the fragment, size the scratch), then timed runs.
  (void)blast::search_fragment_batch(contexts, frag, blast::KernelKind::kFast);
  const auto scalar =
      run_kernel(contexts, frag, blast::KernelKind::kScalar, repeats);
  const auto fast =
      run_kernel(contexts, frag, blast::KernelKind::kFast, repeats);
  const double speedup = scalar.wall / fast.wall;

  for (const auto* kr : {&scalar, &fast}) {
    const char* kname = kr == &scalar ? "scalar" : "fast";
    emit_row(name, kname, *kr);
    table.add_row({name, kname, util::fixed(kr->wall * 1e3, 1),
                   util::fixed(static_cast<double>(kr->cells) / kr->wall / 1e6,
                               1),
                   util::fixed(static_cast<double>(kr->seeds) / kr->wall / 1e6,
                               1),
                   std::to_string(kr->hsps),
                   kr == &fast ? util::fixed(speedup, 2) + "x" : "1.00x"});
  }
  std::printf(
      "ROW {\"bench\":\"micro_kernel\",\"type\":\"%s\",\"kernel\":\"speedup\","
      "\"speedup\":%.3f}\n",
      name, speedup);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("micro_kernel",
                       "search-kernel throughput: scalar reference vs fast "
                       "path (fragment indexing + batched SWAR extension)");
  args.add("residues", "1048576", "database residues per sequence type")
      .add("query-bytes", "16384", "query-set FASTA bytes")
      .add("query-chunk", "64",
           "split sampled queries into chunks of this many residues "
           "(0 = whole records)")
      .add("repeats", "3", "timed repetitions per kernel (mean reported)")
      .add("types", "both", "both | protein | dna");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error();
    return args.error().rfind("usage:", 0) == 0 ? 0 : 2;
  }
  const auto residues = static_cast<std::uint64_t>(args.get_int("residues"));
  const auto query_bytes =
      static_cast<std::uint64_t>(args.get_int("query-bytes"));
  const auto query_chunk =
      static_cast<std::uint64_t>(args.get_int("query-chunk"));
  const int repeats = args.get_int("repeats");
  const std::string types = args.get("types");

  util::Table table({"Type", "Kernel", "Wall (ms)", "Mcells/s", "Mseeds/s",
                     "HSPs", "Speedup"});
  if (types == "both" || types == "protein")
    bench_type(seqdb::SeqType::kProtein, residues, query_bytes, query_chunk,
               repeats, table);
  if (types == "both" || types == "dna")
    bench_type(seqdb::SeqType::kNucleotide, residues, query_bytes, query_chunk,
               repeats, table);
  table.print(std::cout);
  return 0;
}
