// Shared benchmark workloads and the calibrated cost model.
//
// The paper's experiments ran GenBank nr (~1 GB) / nt (~11 GB) on a 256-CPU
// Altix; this reproduction runs synthetic databases scaled down ~300x with
// virtual-time cost constants calibrated so the *shape* of every figure
// (who wins, by what factor, where the crossover falls) matches Section 4.
// All knobs live here, in one place, with the calibration rationale.
#pragma once

#include <string>
#include <vector>

#include "blast/driver.h"
#include "blast/job.h"
#include "mpiblast/mpiblast.h"
#include "pioblast/pioblast.h"
#include "seqdb/generator.h"
#include "sim/cluster.h"
#include "util/table.h"

namespace pioblast::bench {

/// Query-set target sizes: scaled analogues of the paper's 26/77/159/289 KB
/// sets (Table 2). The default experiment size mirrors the 150 KB set.
struct QuerySizes {
  static constexpr std::uint64_t kSmall = 3u << 10;    // ~26 KB analogue
  static constexpr std::uint64_t kMedium = 8u << 10;   // ~77 KB analogue
  static constexpr std::uint64_t kDefault = 16u << 10; // ~150 KB analogue
  static constexpr std::uint64_t kLarge = 30u << 10;   // ~289 KB analogue
};

/// The protein database standing in for GenBank nr. Few family roots +
/// Yule-process growth reproduce nr's redundancy: sampled queries hit
/// hundreds of subjects, so per-fragment hit lists saturate the local cut
/// and the master's merge volume grows with the fragment count — the
/// mechanism behind Figures 1(b) and 3(a). Built once, cached.
const std::vector<seqdb::FastaRecord>& nr_database();

/// The nucleotide database standing in for GenBank nt (Figure 1(a)):
/// larger and more search-dominated than nr.
const std::vector<seqdb::FastaRecord>& nt_database();

/// Compute-cost constants calibrated against Section 4 (see .cpp).
sim::CostModel bench_cost_model();

/// Cluster presets with the bench cost model installed.
sim::ClusterConfig altix();
sim::ClusterConfig blade();
/// Altix with the nt-workload kernel calibration (see .cpp for rationale).
sim::ClusterConfig nt_altix();

/// Job template for the nr workload (blastp, scaled hit-list cut).
blast::JobConfig nr_job();
/// Job template for the nt workload (blastn).
blast::JobConfig nt_job();

/// Samples a query set of roughly `bytes` FASTA bytes and returns its text.
std::string make_query_set(const std::vector<seqdb::FastaRecord>& db,
                           std::uint64_t bytes, std::uint64_t seed = 4242);

/// Runs mpiBLAST end to end on a fresh ClusterStorage: stages queries,
/// mpiformatdb's the database into `nfragments`, runs, returns the result.
/// `exec` selects the rank execution backend (mpisim/exec.h) — large-world
/// scalability sweeps need the event backend.
blast::DriverResult run_mpiblast_job(const sim::ClusterConfig& cluster,
                                     int nprocs,
                                     const std::vector<seqdb::FastaRecord>& db,
                                     const std::string& query_fasta,
                                     const blast::JobConfig& job, int nfragments,
                                     mpisim::ExecModel exec =
                                         mpisim::ExecModel::kThreads);

/// Runs pioBLAST end to end on a fresh ClusterStorage (plain formatdb, no
/// physical fragments).
blast::DriverResult run_pioblast_job(const sim::ClusterConfig& cluster,
                                     int nprocs,
                                     const std::vector<seqdb::FastaRecord>& db,
                                     const std::string& query_fasta,
                                     const blast::JobConfig& job,
                                     pio::PioBlastOptions opts = {});

/// Prints a one-line experiment banner (database/query/cluster summary).
void print_banner(const std::string& title, const std::string& detail);

/// Prints the run's structured counters as one machine-readable line:
/// `METRICS <label> {"name":value,...}` (names sorted; see driver/metrics.h).
void emit_metrics(const std::string& label, const blast::DriverResult& result);

/// If argv[1] is given, writes `table` there as CSV (so figure data can be
/// re-plotted); always returns 0 so benches can `return finish(...)`.
int finish(const util::Table& table, int argc, const char* const* argv);

}  // namespace pioblast::bench
