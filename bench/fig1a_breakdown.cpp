// Figure 1(a) reproduction: distribution of mpiBLAST execution time
// between search and non-search ("other") work, for 16/32/64 processes,
// searching a query set against the nt-analogue database.
//
// Paper reference: search fraction slips from 95.6% at 16 processes to
// 70.7% at 64 — search time shrinks with more workers while the
// serialized result handling does not. Expected shape: monotonically
// decreasing search fraction with process count.
#include <iostream>

#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

int main(int argc, char** argv) {
  const auto& db = bench::nt_database();
  const auto queries = bench::make_query_set(db, bench::QuerySizes::kLarge);
  const auto cluster = bench::nt_altix();
  const auto job = bench::nt_job();

  bench::print_banner("Figure 1(a): mpiBLAST search vs non-search time",
                      "nt-analogue database, " + std::to_string(db.size()) +
                          " sequences, processes in {16, 32, 64}");

  util::Table table(
      {"Processes", "Search (s)", "Other (s)", "Total (s)", "Search %"});
  for (int nprocs : {16, 32, 64}) {
    const auto r = bench::run_mpiblast_job(cluster, nprocs, db, queries, job,
                                           nprocs - 1);
    const double other = r.phases.total - r.phases.search;
    table.add_row({std::to_string(nprocs), util::fixed(r.phases.search, 2),
                   util::fixed(other, 2), util::fixed(r.phases.total, 2),
                   util::format_percent(r.phases.search_fraction())});
  }
  table.print(std::cout);
  return bench::finish(table, argc, argv);
}
