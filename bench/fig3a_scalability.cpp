// Figure 3(a) reproduction: node scalability of mpiBLAST vs pioBLAST on
// the Altix-analogue cluster, processes in {4, 8, 16, 32, 62}, default
// query set against the nr-analogue database.
//
// Paper reference: both search times drop with more processes; mpiBLAST's
// non-search time *grows* until it offsets the search gains (total time
// rises past ~32 processes; only 10.3% of time in search at 62), while
// pioBLAST's non-search time keeps shrinking (92.4% in search at 62,
// 1.86x overall speedup from 32 to 62 processes).
#include <iostream>

#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

int main(int argc, char** argv) {
  const auto& db = bench::nr_database();
  const auto queries = bench::make_query_set(db, bench::QuerySizes::kDefault);
  const auto cluster = bench::altix();
  const auto job = bench::nr_job();

  bench::print_banner("Figure 3(a): node scalability, mpiBLAST vs pioBLAST",
                      "nr-analogue database, natural partitioning, processes "
                      "in {4, 8, 16, 32, 62}");

  util::Table table({"Program-Procs", "Search (s)", "Other (s)", "Total (s)",
                     "Search %"});
  auto add = [&](const std::string& name, const blast::DriverResult& r) {
    table.add_row({name, util::fixed(r.phases.search, 2),
                   util::fixed(r.phases.total - r.phases.search, 2),
                   util::fixed(r.phases.total, 2),
                   util::format_percent(r.phases.search_fraction())});
  };
  for (int nprocs : {4, 8, 16, 32, 62}) {
    add("mpi-" + std::to_string(nprocs),
        bench::run_mpiblast_job(cluster, nprocs, db, queries, job, nprocs - 1));
    add("pio-" + std::to_string(nprocs),
        bench::run_pioblast_job(cluster, nprocs, db, queries, job));
  }
  table.print(std::cout);
  return bench::finish(table, argc, argv);
}
