// Figure 3(a) reproduction: node scalability of mpiBLAST vs pioBLAST on
// the Altix-analogue cluster, default query set against the nr-analogue
// database.
//
// Paper reference: both search times drop with more processes; mpiBLAST's
// non-search time *grows* until it offsets the search gains (total time
// rises past ~32 processes; only 10.3% of time in search at 62), while
// pioBLAST's non-search time keeps shrinking (92.4% in search at 62,
// 1.86x overall speedup from 32 to 62 processes).
//
// Beyond the paper's 62 processes, --ranks extends the sweep to
// multi-thousand-rank worlds (e.g. --ranks 64,128,512,1024,4096). Worlds
// of that size need --exec-model events: the event backend multiplexes
// every rank as a fiber on one scheduler thread, where the default
// thread-per-rank backend would need thousands of kernel threads. One
// machine-readable `ROW {...}` JSON line is emitted per (driver, world
// size); tools/bench_to_json.py folds them into BENCH_scalability.json.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/args.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

namespace {

std::vector<int> parse_ranks(const std::string& spec) {
  std::vector<int> out;
  std::istringstream in(spec);
  std::string field;
  while (std::getline(in, field, ',')) {
    if (field.empty()) continue;
    const int n = std::stoi(field);
    if (n < 2) throw util::RuntimeError("--ranks: world size must be >= 2");
    out.push_back(n);
  }
  if (out.empty()) throw util::RuntimeError("--ranks: empty list");
  return out;
}

void emit_row(const char* driver, int nprocs, mpisim::ExecModel exec,
              const blast::DriverResult& r) {
  std::printf(
      "ROW {\"bench\":\"fig3a\",\"driver\":\"%s\",\"procs\":%d,"
      "\"exec\":\"%s\",\"search_s\":%.6f,\"other_s\":%.6f,"
      "\"total_s\":%.6f,\"search_frac\":%.4f}\n",
      driver, nprocs, mpisim::to_string(exec), r.phases.search,
      r.phases.total - r.phases.search, r.phases.total,
      r.phases.search_fraction());
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("fig3a_scalability",
                       "Figure 3(a): node scalability, mpiBLAST vs pioBLAST");
  args.add("ranks", "4,8,16,32,62",
           "comma-separated world sizes (e.g. 64,128,512,1024,4096)")
      .add("exec-model", "threads",
           "rank execution backend: threads | events (required in practice "
           "for worlds beyond a few hundred ranks)")
      .add("drivers", "both", "both | mpiblast | pioblast")
      .add("query-bytes", "0",
           "query-set FASTA bytes (0 = the default ~150 KB-analogue set; "
           "shrink for quick large-world smoke runs)");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error();
    return args.error().rfind("usage:", 0) == 0 ? 0 : 2;
  }
  const auto ranks = parse_ranks(args.get("ranks"));
  const auto exec = mpisim::parse_exec_model(args.get("exec-model"));
  const std::string drivers = args.get("drivers");
  const bool run_mpi = drivers == "both" || drivers == "mpiblast";
  const bool run_pio = drivers == "both" || drivers == "pioblast";
  const std::uint64_t query_bytes =
      args.get_int("query-bytes") > 0
          ? static_cast<std::uint64_t>(args.get_int("query-bytes"))
          : bench::QuerySizes::kDefault;

  const auto& db = bench::nr_database();
  const auto queries = bench::make_query_set(db, query_bytes);
  const auto cluster = bench::altix();
  const auto job = bench::nr_job();

  bench::print_banner("Figure 3(a): node scalability, mpiBLAST vs pioBLAST",
                      "nr-analogue database, natural partitioning, " +
                          std::to_string(ranks.size()) + " world sizes, " +
                          std::string(mpisim::to_string(exec)) + " backend");

  util::Table table({"Program-Procs", "Search (s)", "Other (s)", "Total (s)",
                     "Search %"});
  auto add = [&](const std::string& name, const blast::DriverResult& r) {
    table.add_row({name, util::fixed(r.phases.search, 2),
                   util::fixed(r.phases.total - r.phases.search, 2),
                   util::fixed(r.phases.total, 2),
                   util::format_percent(r.phases.search_fraction())});
  };
  for (int nprocs : ranks) {
    if (run_mpi) {
      // mpiformatdb cannot split the database into more physical
      // fragments than it has sequences; report the skip rather than
      // silently narrowing the sweep.
      if (static_cast<std::uint64_t>(nprocs - 1) > db.size()) {
        std::printf("(mpiblast skipped at %d procs: %zu sequences cannot "
                    "fill %d fragments)\n",
                    nprocs, db.size(), nprocs - 1);
      } else {
        const auto r = bench::run_mpiblast_job(cluster, nprocs, db, queries,
                                               job, nprocs - 1, exec);
        add("mpi-" + std::to_string(nprocs), r);
        emit_row("mpiblast", nprocs, exec, r);
      }
    }
    if (run_pio) {
      pio::PioBlastOptions opts;
      opts.exec = exec;
      const auto r =
          bench::run_pioblast_job(cluster, nprocs, db, queries, job, opts);
      add("pio-" + std::to_string(nprocs), r);
      emit_row("pioblast", nprocs, exec, r);
    }
  }
  table.print(std::cout);
  // CSV path stays positional, as in every other bench: fig3a out.csv.
  if (!args.positional().empty()) {
    const char* pass[] = {argv[0], args.positional()[0].c_str()};
    return bench::finish(table, 2, pass);
  }
  return 0;
}
