// Micro-benchmark: database formatting and partitioning (google-benchmark,
// real wall time) plus the paper's §3.1 motivation numbers — formatdb cost
// at full GenBank scale under the calibrated cost model (the paper quotes
// ~6 minutes for the 1 GB nr and ~22 minutes for the 11 GB nt on an Altix
// head node, a cost mpiBLAST users pay again at every re-partitioning and
// pioBLAST users pay once).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "pario/vfs.h"
#include "seqdb/formatdb.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"
#include "workloads.h"

using namespace pioblast;

namespace {

const std::vector<seqdb::FastaRecord>& small_db() {
  static const auto* db = [] {
    seqdb::GeneratorConfig cfg;
    cfg.target_residues = 256u << 10;
    cfg.seed = 99;
    return new std::vector<seqdb::FastaRecord>(seqdb::generate_database(cfg));
  }();
  return *db;
}

void BM_FormatDb(benchmark::State& state) {
  const auto& db = small_db();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    pario::VirtualFS fs;
    const auto r = seqdb::format_db(fs, db, "db", seqdb::SeqType::kProtein, "t");
    bytes = r.formatted_bytes;
    benchmark::DoNotOptimize(r.index.num_seqs);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FormatDb);

void BM_Mpiformatdb(benchmark::State& state) {
  const auto& db = small_db();
  const int fragments = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pario::VirtualFS fs;
    const auto r = seqdb::mpiformatdb(fs, db, "db", seqdb::SeqType::kProtein,
                                      "t", fragments);
    benchmark::DoNotOptimize(r.bytes_written);
  }
  state.counters["fragments"] = fragments;
}
BENCHMARK(BM_Mpiformatdb)->Arg(8)->Arg(31)->Arg(61);

void BM_VirtualPartition(benchmark::State& state) {
  const auto& db = small_db();
  pario::VirtualFS fs;
  const auto fmt = seqdb::format_db(fs, db, "db", seqdb::SeqType::kProtein, "t");
  const int fragments = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto ranges = seqdb::virtual_partition(fmt.index, fragments);
    benchmark::DoNotOptimize(ranges.size());
  }
  state.counters["fragments"] = fragments;
}
BENCHMARK(BM_VirtualPartition)->Arg(31)->Arg(167);

void BM_LoadFragmentFromSlices(benchmark::State& state) {
  const auto& db = small_db();
  pario::VirtualFS fs;
  const auto fmt = seqdb::format_db(fs, db, "db", seqdb::SeqType::kProtein, "t");
  const auto names = seqdb::volume_names("db", seqdb::SeqType::kProtein);
  const auto ranges = seqdb::virtual_partition(fmt.index, 8);
  const auto& fr = ranges[3];
  for (auto _ : state) {
    seqdb::DbIndex hdr;
    hdr.type = seqdb::SeqType::kProtein;
    auto frag = seqdb::fragment_from_slices(
        hdr, fr, fs.pread(names.index, fr.pin_seq_off.offset, fr.pin_seq_off.length),
        fs.pread(names.index, fr.pin_hdr_off.offset, fr.pin_hdr_off.length),
        fs.pread(names.sequence, fr.psq.offset, fr.psq.length),
        fs.pread(names.header, fr.phr.offset, fr.phr.length));
    benchmark::DoNotOptimize(frag.num_seqs());
  }
}
BENCHMARK(BM_LoadFragmentFromSlices);

}  // namespace

int main(int argc, char** argv) {
  // §3.1 motivation numbers at full paper scale, from the cost model.
  const auto cost = bench::bench_cost_model();
  std::printf(
      "formatdb cost at paper scale (calibrated model): nr (1 GB) = %.1f min, "
      "nt (11 GB) = %.1f min\n(the paper reports ~6 and ~22 minutes; "
      "re-partitioning pays this again, virtual partitioning does not)\n\n",
      cost.formatdb_seconds(1ull << 30) / 60.0,
      cost.formatdb_seconds(11ull << 30) / 60.0);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
