// Micro-study (virtual time): two-phase collective output vs master-serial
// output for the interleaved region pattern pioBLAST produces — the §3.3
// mechanism in isolation, swept over rank counts, data volumes, aggregator
// counts, and both storage models.
#include <cstdio>
#include <iostream>

#include "mpisim/runtime.h"
#include "pario/collective.h"
#include "pario/file.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

namespace {

/// Interleaved 1.5 KB records (alignment-output-sized) totalling `bytes`.
struct Pattern {
  static constexpr std::uint64_t kRecord = 1536;
};

/// Virtual time of a collective write of `total` bytes by `nprocs` ranks.
double collective_time(const sim::ClusterConfig& cluster, int nprocs,
                       std::uint64_t total, int aggregators) {
  pario::VirtualFS fs(cluster.shared_storage);
  const std::uint64_t records = total / Pattern::kRecord;
  const auto report = mpisim::run(nprocs, cluster, [&](mpisim::Process& p) {
    pario::FileView view;
    std::vector<std::uint8_t> data;
    for (std::uint64_t r = static_cast<std::uint64_t>(p.rank()); r < records;
         r += static_cast<std::uint64_t>(p.size())) {
      view.append({r * Pattern::kRecord, Pattern::kRecord});
      data.insert(data.end(), Pattern::kRecord, static_cast<std::uint8_t>(r));
    }
    pario::CollectiveConfig cfg;
    cfg.aggregators = aggregators;
    pario::collective_write(p, fs, "out", view, data, cfg);
  });
  return report.makespan();
}

/// Virtual time of the mpiBLAST pattern: every record travels to rank 0,
/// which writes the file serially.
double serial_time(const sim::ClusterConfig& cluster, int nprocs,
                   std::uint64_t total) {
  pario::VirtualFS fs(cluster.shared_storage);
  const std::uint64_t records = total / Pattern::kRecord;
  const auto report = mpisim::run(nprocs, cluster, [&](mpisim::Process& p) {
    constexpr int kTag = 1;
    if (p.rank() == 0) {
      std::uint64_t offset = 0;
      for (std::uint64_t r = 0; r < records; ++r) {
        const int owner = static_cast<int>(r % static_cast<std::uint64_t>(
                                                   p.size() - 1)) +
                          1;
        p.send_value<std::uint64_t>(owner, kTag, r);
        auto msg = p.recv(owner, kTag);
        pario::timed_write(p, fs, "out", offset, msg.payload, 1);
        offset += msg.payload.size();
      }
      for (int w = 1; w < p.size(); ++w)
        p.send_value<std::uint64_t>(w, kTag, ~0ull);
    } else {
      while (true) {
        const auto r = p.recv_value<std::uint64_t>(0, kTag);
        if (r == ~0ull) break;
        std::vector<std::uint8_t> rec(Pattern::kRecord,
                                      static_cast<std::uint8_t>(r));
        p.send(0, kTag, rec);
      }
    }
    p.barrier();
  });
  return report.makespan();
}

}  // namespace

int main() {
  bench::print_banner("Micro: collective vs serial output (virtual time)",
                      "interleaved 1.5 KB records, shared output file");

  for (const bool nfs : {false, true}) {
    const auto cluster = nfs ? bench::blade() : bench::altix();
    std::printf("--- storage: %s ---\n", cluster.shared_storage.name().c_str());
    util::Table table({"Ranks", "Volume", "Serial (s)", "Collective (s)",
                       "Speedup"});
    for (int nprocs : {4, 16, 32}) {
      for (std::uint64_t mb : {1ull, 4ull}) {
        const std::uint64_t total = mb << 20;
        const double ser = serial_time(cluster, nprocs, total);
        const double col = collective_time(cluster, nprocs, total, 4);
        table.add_row({std::to_string(nprocs), util::format_bytes(total),
                       util::fixed(ser, 3), util::fixed(col, 3),
                       util::fixed(ser / col, 1) + "x"});
      }
    }
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf("aggregator sweep (xfs, 32 ranks, 4 MiB):\n");
  util::Table table({"Aggregators", "Collective (s)"});
  const auto cluster = bench::altix();
  for (int aggs : {1, 2, 4, 8, 16, 31}) {
    table.add_row({std::to_string(aggs),
                   util::fixed(collective_time(cluster, 32, 4u << 20, aggs), 3)});
  }
  table.print(std::cout);
  return 0;
}
