// Table 2 reproduction: query-set size -> search output size.
//
// Paper reference: 26 KB -> 11 MB, 77 KB -> 47 MB, 159 KB -> 96 MB,
// 289 KB -> 153 MB (output grows roughly linearly with query size).
// Expected shape: monotone, near-linear growth of output size in query
// size; the bytes-per-query-byte ratio stays within a small band.
#include <iostream>

#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

int main(int argc, char** argv) {
  const int nprocs = 16;
  const auto& db = bench::nr_database();
  const auto cluster = bench::altix();
  const auto job = bench::nr_job();

  bench::print_banner("Table 2: query size vs output size",
                      "nr-analogue database, outputs measured from pioBLAST "
                      "(mpiBLAST produces identical files)");

  util::Table table({"Query size", "Queries", "Output size", "Output/query"});
  for (const std::uint64_t target :
       {bench::QuerySizes::kSmall, bench::QuerySizes::kMedium,
        bench::QuerySizes::kDefault, bench::QuerySizes::kLarge}) {
    const auto queries = bench::make_query_set(db, target);
    const auto r = bench::run_pioblast_job(cluster, nprocs, db, queries, job);
    std::size_t nqueries = 0;
    for (char c : queries)
      if (c == '>') ++nqueries;
    table.add_row({util::format_bytes(queries.size()), std::to_string(nqueries),
                   util::format_bytes(r.output_bytes),
                   util::fixed(static_cast<double>(r.output_bytes) /
                                   static_cast<double>(queries.size()),
                               1)});
  }
  table.print(std::cout);
  return bench::finish(table, argc, argv);
}
