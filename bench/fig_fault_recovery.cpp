// Fault-recovery overhead: failure-free vs armed-detector vs one crashed
// worker vs one 4x straggler, on both drivers.
//
// Not a paper figure — the paper's clusters simply lost the job when a
// node died. This bench quantifies what the fault-tolerant serve loop
// costs: the armed-detector row prices the machinery alone (flat
// survivor-aware collectives, liveness sync), the crash row prices losing
// one worker's banked work mid-search (its fragments are requeued to the
// survivors), and the straggler row prices a slow node under the greedy
// queue. Every faulted run's report must stay byte-identical to the
// failure-free baseline.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "driver/metrics.h"
#include "mpisim/fault.h"
#include "mpisim/trace.h"
#include "pario/env.h"
#include "seqdb/partition.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

namespace {

struct BenchRun {
  blast::DriverResult result;
  std::vector<std::uint8_t> output;
};

BenchRun run_mpi(const sim::ClusterConfig& cluster, int nprocs,
                 const std::string& queries, const blast::JobConfig& job,
                 int nfragments, const mpisim::FaultPlan& faults,
                 mpisim::Tracer* tracer = nullptr) {
  pario::ClusterStorage storage(cluster, nprocs);
  storage.shared().write_all(
      job.query_path,
      std::span(reinterpret_cast<const std::uint8_t*>(queries.data()),
                queries.size()));
  const auto parts =
      seqdb::mpiformatdb(storage.shared(), bench::nr_database(), job.db_base,
                         job.params.type, job.db_title, nfragments);
  mpiblast::MpiBlastOptions opts;
  opts.job = job;
  opts.fragment_bases = parts.fragment_bases;
  opts.fragment_ranges = parts.ranges;
  opts.global_index = parts.global_index;
  opts.faults = faults;
  opts.tracer = tracer;
  BenchRun run{mpiblast::run_mpiblast(cluster, nprocs, storage, opts), {}};
  run.output = storage.shared().read_all(job.output_path);
  return run;
}

BenchRun run_pio(const sim::ClusterConfig& cluster, int nprocs,
                 const std::string& queries, const blast::JobConfig& job,
                 int nfragments, const mpisim::FaultPlan& faults,
                 mpisim::Tracer* tracer = nullptr) {
  pario::ClusterStorage storage(cluster, nprocs);
  storage.shared().write_all(
      job.query_path,
      std::span(reinterpret_cast<const std::uint8_t*>(queries.data()),
                queries.size()));
  seqdb::format_db(storage.shared(), bench::nr_database(), job.db_base,
                   job.params.type, job.db_title);
  pio::PioBlastOptions opts;
  opts.job = job;
  opts.job.nfragments = nfragments;
  opts.dynamic_scheduling = true;  // the recoverable scheduling mode
  opts.faults = faults;
  opts.tracer = tracer;
  BenchRun run{pio::run_pioblast(cluster, nprocs, storage, opts), {}};
  run.output = storage.shared().read_all(job.output_path);
  return run;
}

/// 1-based comm-event ordinal of `rank`'s `nth` work-request send in a
/// probe trace — a crash point inside the serve loop with n-1 fragments
/// of banked results.
std::uint64_t nth_work_request_event(const mpisim::Tracer& tracer, int rank,
                                     int nth) {
  std::uint64_t events = 0;
  int requests = 0;
  for (const auto& e : tracer.for_rank(rank)) {
    if (e.kind != mpisim::TraceKind::kSend &&
        e.kind != mpisim::TraceKind::kRecv) {
      continue;
    }
    ++events;
    if (e.kind == mpisim::TraceKind::kSend &&
        e.detail.find("tag=1 b") != std::string::npos && ++requests == nth) {
      return events;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int nprocs = 8;
  const int victim = nprocs / 2;
  const int nfragments = 2 * (nprocs - 1);
  const auto cluster = bench::altix();
  const auto queries =
      bench::make_query_set(bench::nr_database(), bench::QuerySizes::kMedium);

  bench::print_banner(
      "Fault recovery overhead",
      "nr-analogue, " + std::to_string(nprocs) + " processes, " +
          std::to_string(nfragments) + " fragments; victim rank " +
          std::to_string(victim) +
          " crashes at its 3rd work request (2 fragments of banked results "
          "lost) or runs as a 4x straggler");

  util::Table table({"Driver", "Condition", "Makespan", "Overhead", "Reassigned",
                     "Lost ranks", "Output identical"});

  struct DriverDef {
    const char* name;
    BenchRun (*run)(const sim::ClusterConfig&, int, const std::string&,
                    const blast::JobConfig&, int, const mpisim::FaultPlan&,
                    mpisim::Tracer*);
  };
  const DriverDef drivers[] = {{"mpiBLAST", &run_mpi}, {"pioBLAST", &run_pio}};

  for (const auto& d : drivers) {
    auto job = bench::nr_job();
    job.output_path = std::string("out.") + d.name + ".txt";

    const auto clean = d.run(cluster, nprocs, queries, job, nfragments, {},
                             nullptr);

    mpisim::FaultPlan armed;
    armed.arm_detector = true;
    mpisim::Tracer probe;
    const auto armed_run =
        d.run(cluster, nprocs, queries, job, nfragments, armed, &probe);

    mpisim::FaultPlan crash;
    crash.at(victim).crash_at = nth_work_request_event(probe, victim, 3);
    const auto crashed =
        d.run(cluster, nprocs, queries, job, nfragments, crash, nullptr);

    mpisim::FaultPlan straggle;
    straggle.at(victim).slow = 4.0;
    const auto straggler =
        d.run(cluster, nprocs, queries, job, nfragments, straggle, nullptr);

    const double base = clean.result.phases.total;
    auto row = [&](const char* condition, const BenchRun& r) {
      const auto get = [&](const char* key) {
        const auto it = r.result.metrics.find(key);
        return it == r.result.metrics.end() ? 0ull : it->second;
      };
      table.add_row(
          {d.name, condition, util::fixed(r.result.phases.total, 2),
           util::format_percent(r.result.phases.total / base - 1.0),
           std::to_string(get("tasks_reassigned")),
           std::to_string(get("ranks_lost")),
           r.output == clean.output ? "yes" : "NO"});
    };
    row("clean", clean);
    row("armed detector", armed_run);
    row("1 worker crash", crashed);
    row("1 worker 4x slow", straggler);
    bench::emit_metrics(std::string(d.name) + "_crash", crashed.result);
    bench::emit_metrics(std::string(d.name) + "_straggler", straggler.result);
  }

  table.print(std::cout);
  std::printf(
      "\nThe armed-detector row is the price of the fault-tolerance "
      "machinery alone; crash overhead additionally re-searches the "
      "victim's banked fragments on the survivors.\n");
  return bench::finish(table, argc, argv);
}
