#include "workloads.h"

#include <cstdio>
#include <fstream>

#include "driver/metrics.h"
#include "pario/env.h"
#include "seqdb/partition.h"

namespace pioblast::bench {

const std::vector<seqdb::FastaRecord>& nr_database() {
  static const auto* db = [] {
    seqdb::GeneratorConfig cfg;
    cfg.type = seqdb::SeqType::kProtein;
    cfg.target_residues = 2u << 20;  // ~2 M residues (~1/500 of nr)
    cfg.seed = 20050404;             // IPDPS'05
    cfg.max_roots = 25;              // nr-like redundancy: large families
    cfg.family_fraction = 0.9;
    cfg.mutation_rate = 0.06;
    cfg.indel_rate = 0.006;
    cfg.id_prefix = "nr";
    return new std::vector<seqdb::FastaRecord>(seqdb::generate_database(cfg));
  }();
  return *db;
}

const std::vector<seqdb::FastaRecord>& nt_database() {
  static const auto* db = [] {
    seqdb::GeneratorConfig cfg;
    cfg.type = seqdb::SeqType::kNucleotide;
    cfg.target_residues = 8u << 20;  // nt is ~11x nr in the paper
    cfg.seed = 20050405;
    cfg.max_roots = 16;  // large families: saturated per-fragment hit lists
    cfg.family_fraction = 0.7;
    cfg.mutation_rate = 0.08;
    cfg.indel_rate = 0.004;
    cfg.min_len = 200;
    cfg.max_len = 8000;
    cfg.log_mean = 7.0;  // ~1.1 kb mean, nt-like
    cfg.log_sigma = 0.6;
    cfg.id_prefix = "nt";
    return new std::vector<seqdb::FastaRecord>(seqdb::generate_database(cfg));
  }();
  return *db;
}

sim::CostModel bench_cost_model() {
  // Calibration. Targets, all from Section 4 at the paper's 1/300-ish
  // scale (virtual seconds here ~ paper seconds / 100):
  //   * aggregate BLAST compute for {nr x default query} ~ 100-150 s, so
  //     search time is ~5 s at 31 workers and dominates small runs;
  //   * mpiBLAST result processing is master-serialized and is dominated
  //     by (a) per-byte handling of the full alignment records workers
  //     submit and (b) the per-alignment synchronous result fetching that
  //     the paper measured at > 40% of output time;
  //   * pioBLAST pays the same per-byte handling on 48-byte metadata
  //     records instead, so its merge cost is ~12x smaller per candidate.
  sim::CostModel::Params p;
  p.scale = 1.0;
  // BLAST kernel: ~30x the raw per-op cost of a modern core, standing in
  // for the 1.5 GHz Itanium2 plus the scale factor.
  p.sec_per_db_residue = 120e-9;
  p.sec_per_seed_hit = 360e-9;
  p.sec_per_ungapped_cell = 90e-9;
  p.sec_per_gapped_cell = 270e-9;
  p.sec_per_traceback_cell = 360e-9;
  p.fragment_setup = 0.25;   // per-fragment kernel re-initialisation
  p.process_init = 0.10;     // NCBI toolkit startup
  // Result processing. The asymmetry between the drivers is structural:
  // both pay merge_record + merge_byte on what workers submit, but only
  // mpiBLAST's full-HSP submissions additionally pay sec_per_hsp_result
  // (NCBI result-structure handling per alignment record) — pioBLAST's
  // 48-byte metadata records skip it (§3.2).
  p.sec_per_merge_record = 2e-6;
  p.sec_per_merge_byte = 0.2e-6;
  p.sec_per_hsp_result = 2.5e-3;
  p.sec_per_format_byte = 150e-9;
  p.sec_per_memcpy_byte = 0.5e-9;
  p.per_alignment_fetch_handling = 40e-3;
  // Database preparation (reported at full paper scale by micro_formatdb).
  p.sec_per_formatdb_byte = 360e-9;
  return sim::CostModel(p);
}

namespace {

/// Rescales a storage model's bandwidths for the bench workload. The
/// database is ~500x smaller than GenBank nr while virtual compute is only
/// ~20x smaller than the paper's timings, so device bandwidths must shrink
/// by the ratio (~24x) to preserve the paper's I/O-to-compute balance. NFS
/// gets an extra factor: at real scale its per-operation overheads (which
/// our linear model understates) dominated the blade-cluster results.
sim::StorageModel scale_storage(const sim::StorageModel& m, double factor) {
  auto p = m.params();
  p.client_read_bw /= factor;
  p.client_write_bw /= factor;
  p.aggregate_read_bw /= factor;
  p.aggregate_write_bw /= factor;
  return sim::StorageModel(p);
}

constexpr double kStorageScale = 24.0;
constexpr double kNfsExtraScale = 4.0;

}  // namespace

sim::ClusterConfig altix() {
  auto c = sim::ClusterConfig::ornl_altix();
  c.cost = bench_cost_model();
  c.shared_storage = scale_storage(c.shared_storage, kStorageScale);
  return c;
}

sim::ClusterConfig nt_altix() {
  // The nt database is scaled down ~1400x (11 GB -> 8 MB) while nr is only
  // scaled ~500x, and real blastn spends far more machine-time per scanned
  // byte at paper scale than our word-hash scan counters suggest. To keep
  // virtual seconds tracking the paper's machine-seconds for the Figure
  // 1(a) workload, the BLAST kernel constants are recalibrated upward for
  // nt runs; result-processing constants are shared with the nr workload.
  auto c = altix();
  auto p = c.cost.params();
  const double kNtKernelScale = 80.0;
  p.sec_per_db_residue *= kNtKernelScale;
  p.sec_per_seed_hit *= kNtKernelScale;
  p.sec_per_ungapped_cell *= kNtKernelScale;
  p.sec_per_gapped_cell *= kNtKernelScale;
  p.sec_per_traceback_cell *= kNtKernelScale;
  c.cost = sim::CostModel(p);
  return c;
}

sim::ClusterConfig blade() {
  auto c = sim::ClusterConfig::ncsu_blade();
  c.cost = bench_cost_model();
  c.shared_storage =
      scale_storage(c.shared_storage, kStorageScale * kNfsExtraScale);
  c.local_disks = scale_storage(*c.local_disks, kStorageScale);
  return c;
}

blast::JobConfig nr_job() {
  blast::JobConfig job;
  job.db_base = "nr";
  job.db_title = "synthetic nr";
  job.query_path = "queries.fa";
  job.output_path = "results.txt";
  job.params = blast::SearchParams::blastp_defaults();
  job.params.hitlist_size = 6;   // scaled -v/-b analogue
  job.params.xdrop_gapped = 25;  // narrower DP band at bench scale
  return job;
}

blast::JobConfig nt_job() {
  blast::JobConfig job;
  job.db_base = "nt";
  job.db_title = "synthetic nt";
  job.query_path = "queries.fa";
  job.output_path = "results.txt";
  job.params = blast::SearchParams::blastn_defaults();
  job.params.hitlist_size = 6;
  return job;
}

std::string make_query_set(const std::vector<seqdb::FastaRecord>& db,
                           std::uint64_t bytes, std::uint64_t seed) {
  return seqdb::write_fasta(seqdb::sample_queries(db, bytes, seed));
}

namespace {

void stage_queries(pario::ClusterStorage& storage, const blast::JobConfig& job,
                   const std::string& query_fasta) {
  storage.shared().write_all(
      job.query_path,
      std::span(reinterpret_cast<const std::uint8_t*>(query_fasta.data()),
                query_fasta.size()));
}

}  // namespace

blast::DriverResult run_mpiblast_job(const sim::ClusterConfig& cluster,
                                     int nprocs,
                                     const std::vector<seqdb::FastaRecord>& db,
                                     const std::string& query_fasta,
                                     const blast::JobConfig& job,
                                     int nfragments, mpisim::ExecModel exec) {
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, job, query_fasta);
  const auto parts = seqdb::mpiformatdb(storage.shared(), db, job.db_base,
                                        job.params.type, job.db_title,
                                        nfragments);
  mpiblast::MpiBlastOptions opts;
  opts.job = job;
  opts.fragment_bases = parts.fragment_bases;
  opts.fragment_ranges = parts.ranges;
  opts.global_index = parts.global_index;
  opts.exec = exec;
  return mpiblast::run_mpiblast(cluster, nprocs, storage, opts);
}

blast::DriverResult run_pioblast_job(const sim::ClusterConfig& cluster,
                                     int nprocs,
                                     const std::vector<seqdb::FastaRecord>& db,
                                     const std::string& query_fasta,
                                     const blast::JobConfig& job,
                                     pio::PioBlastOptions opts) {
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, job, query_fasta);
  seqdb::format_db(storage.shared(), db, job.db_base, job.params.type,
                   job.db_title);
  opts.job = job;
  return pio::run_pioblast(cluster, nprocs, storage, opts);
}

void print_banner(const std::string& title, const std::string& detail) {
  std::printf("=== %s ===\n%s\n\n", title.c_str(), detail.c_str());
}

void emit_metrics(const std::string& label, const blast::DriverResult& result) {
  std::printf("METRICS %s %s\n", label.c_str(),
              driver::metrics_json(result.metrics).c_str());
}

int finish(const util::Table& table, int argc, const char* const* argv) {
  if (argc > 1) {
    std::ofstream csv(argv[1]);
    if (!csv) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    table.print_csv(csv);
    std::printf("(csv written to %s)\n", argv[1]);
  }
  return 0;
}

}  // namespace pioblast::bench
