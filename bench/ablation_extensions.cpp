// Ablation bench for pioBLAST's design choices and the Section 5
// extensions (not a paper figure; quantifies DESIGN.md's decisions):
//
//   * early score broadcast + local pruning (paper §5) — shrinks the
//     candidate volume the master screens, at the cost of one extra
//     gather/broadcast round per query;
//   * collective vs individual input reads (paper §5 discussion: the
//     individual interface suffices when each worker reads one contiguous
//     range);
//   * virtual-fragment refinement (more fragments than workers,
//     round-robin) — finer granularity, more per-fragment overhead;
//   * number of two-phase output aggregators.
#include <iostream>

#include "util/table.h"
#include "util/units.h"
#include "workloads.h"

using namespace pioblast;

int main(int argc, char** argv) {
  const int nprocs = 32;
  const auto& db = bench::nr_database();
  const auto queries = bench::make_query_set(db, bench::QuerySizes::kDefault);
  const auto cluster = bench::altix();
  const auto job = bench::nr_job();

  bench::print_banner("Ablation: pioBLAST variants at 32 processes",
                      "nr-analogue database, default query set");

  util::Table table({"Variant", "Input (s)", "Search (s)", "Output (s)",
                     "Total (s)", "Candidates"});
  auto add = [&](const std::string& name, const blast::DriverResult& r) {
    table.add_row({name, util::fixed(r.phases.copy_input, 3),
                   util::fixed(r.phases.search, 2),
                   util::fixed(r.phases.output, 3),
                   util::fixed(r.phases.total, 2),
                   std::to_string(r.candidates_merged)});
  };

  add("baseline",
      bench::run_pioblast_job(cluster, nprocs, db, queries, job));

  {
    pio::PioBlastOptions opts;
    opts.early_score_broadcast = true;
    add("+early-score-broadcast",
        bench::run_pioblast_job(cluster, nprocs, db, queries, job, opts));
  }
  {
    pio::PioBlastOptions opts;
    opts.collective_input = true;
    add("+collective-input",
        bench::run_pioblast_job(cluster, nprocs, db, queries, job, opts));
  }
  for (int mult : {2, 4}) {
    auto j = job;
    j.nfragments = (nprocs - 1) * mult;
    add("fragments x" + std::to_string(mult),
        bench::run_pioblast_job(cluster, nprocs, db, queries, j));
  }
  for (int aggs : {1, 2, 8, 16}) {
    pio::PioBlastOptions opts;
    opts.hints.cb_nodes = aggs;
    add("aggregators=" + std::to_string(aggs),
        bench::run_pioblast_job(cluster, nprocs, db, queries, job, opts));
  }
  {
    pio::PioBlastOptions opts;
    opts.dynamic_scheduling = true;
    auto j = job;
    j.nfragments = (nprocs - 1) * 3;
    add("dynamic-scheduling x3",
        bench::run_pioblast_job(cluster, nprocs, db, queries, j, opts));
  }
  for (std::uint32_t batch : {4u, 16u}) {
    pio::PioBlastOptions opts;
    opts.query_batch = batch;
    add("query-batch=" + std::to_string(batch),
        bench::run_pioblast_job(cluster, nprocs, db, queries, job, opts));
  }
  table.print(std::cout);
  return bench::finish(table, argc, argv);
}
